//! Dense, reusable scratch buffers for the sweep hot paths.
//!
//! Every sweep in this workspace — Louvain local moving, the G-/A-TxAllo
//! optimization phases, METIS boundary refinement — needs, per node, the
//! total edge weight from that node into each *bucket* (community, shard or
//! part) its neighbors belong to. The seed implementation gathered these
//! into a fresh `FxHashMap<u32, f64>` and then sorted a copied `Vec` of the
//! entries, per node, per sweep: three allocations plus hashing of every
//! neighbor on the hottest loop in the system (§VI-B6 of the paper puts
//! Louvain initialization at 67.6 s of G-TxAllo's 122.3 s).
//!
//! [`DenseAccumulator`] replaces that with the classic index-addressed
//! sparse-set: a dense `Vec<f64>` indexed by bucket id, an epoch-stamp
//! array marking which slots are live, and a touched-list recording the
//! buckets hit by the current node. `begin` is O(1) (it bumps the epoch
//! instead of zeroing), `add`/`get` are O(1) array accesses, and iterating
//! candidates in deterministic ascending-bucket order only sorts the
//! touched-list — whose length is the node's *distinct neighbor bucket*
//! count, typically a handful, instead of hashing and sorting every
//! neighbor entry.

/// Accumulates `f64` weights keyed by dense `u32` bucket ids, reusable
/// across sweep iterations without re-zeroing.
#[derive(Debug, Clone, Default)]
pub struct DenseAccumulator {
    weight: Vec<f64>,
    stamp: Vec<u64>,
    epoch: u64,
    touched: Vec<u32>,
}

impl DenseAccumulator {
    /// An empty accumulator; buckets are sized on first [`begin`].
    ///
    /// [`begin`]: DenseAccumulator::begin
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new accumulation round over bucket ids `0..buckets`.
    ///
    /// O(1) amortized: previous round's entries are invalidated by epoch
    /// bump, not by clearing.
    pub fn begin(&mut self, buckets: usize) {
        if self.weight.len() < buckets {
            self.weight.resize(buckets, 0.0);
            self.stamp.resize(buckets, 0);
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Adds `w` to `bucket`. First touch of a bucket this round registers
    /// it in the touched-list.
    #[inline]
    pub fn add(&mut self, bucket: u32, w: f64) {
        let i = bucket as usize;
        debug_assert!(i < self.weight.len(), "bucket {bucket} out of range");
        if self.stamp[i] == self.epoch {
            self.weight[i] += w;
        } else {
            self.stamp[i] = self.epoch;
            self.weight[i] = w;
            self.touched.push(bucket);
        }
    }

    /// Accumulated weight of `bucket` this round (0 if untouched).
    #[inline]
    pub fn get(&self, bucket: u32) -> f64 {
        let i = bucket as usize;
        if i < self.stamp.len() && self.stamp[i] == self.epoch {
            self.weight[i]
        } else {
            0.0
        }
    }

    /// Whether `bucket` was touched this round.
    #[inline]
    pub fn contains(&self, bucket: u32) -> bool {
        let i = bucket as usize;
        i < self.stamp.len() && self.stamp[i] == self.epoch
    }

    /// Number of distinct buckets touched this round.
    #[inline]
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether no bucket was touched this round.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Sorts the touched-list ascending, establishing the deterministic
    /// candidate order the sweep algorithms require.
    pub fn sort_touched(&mut self) {
        self.touched.sort_unstable();
    }

    /// The touched buckets, in insertion order (or ascending after
    /// [`sort_touched`]).
    ///
    /// [`sort_touched`]: DenseAccumulator::sort_touched
    #[inline]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// `(bucket, weight)` pairs in touched-list order.
    pub fn entries(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.touched
            .iter()
            .map(move |&b| (b, self.weight[b as usize]))
    }

    /// Approximate resident bytes (capacity, not length, of each buffer).
    pub fn approx_bytes(&self) -> usize {
        self.weight.capacity() * std::mem::size_of::<f64>()
            + self.stamp.capacity() * std::mem::size_of::<u64>()
            + self.touched.capacity() * std::mem::size_of::<u32>()
    }
}

/// A reusable `u32 → u32` map over dense keys, invalidated in O(1) —
/// the index-building cousin of [`DenseAccumulator`] (used e.g. to map
/// subgraph nodes to local ids during recursive bisection without
/// allocating a hash map per recursion step).
#[derive(Debug, Clone, Default)]
pub struct DenseIndexMap {
    value: Vec<u32>,
    stamp: Vec<u64>,
    epoch: u64,
}

impl DenseIndexMap {
    /// An empty map; keys are sized on first [`begin`].
    ///
    /// [`begin`]: DenseIndexMap::begin
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new mapping round over keys `0..keys`.
    pub fn begin(&mut self, keys: usize) {
        if self.value.len() < keys {
            self.value.resize(keys, 0);
            self.stamp.resize(keys, 0);
        }
        self.epoch += 1;
    }

    /// Maps `key` to `value` for this round.
    #[inline]
    pub fn insert(&mut self, key: u32, value: u32) {
        let i = key as usize;
        debug_assert!(i < self.value.len(), "key {key} out of range");
        self.stamp[i] = self.epoch;
        self.value[i] = value;
    }

    /// The value of `key` this round, if mapped.
    #[inline]
    pub fn get(&self, key: u32) -> Option<u32> {
        let i = key as usize;
        if i < self.stamp.len() && self.stamp[i] == self.epoch {
            Some(self.value[i])
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let mut acc = DenseAccumulator::new();
        acc.begin(4);
        acc.add(2, 1.5);
        acc.add(0, 1.0);
        acc.add(2, 0.5);
        assert_eq!(acc.len(), 2);
        assert!((acc.get(2) - 2.0).abs() < 1e-12);
        assert!((acc.get(0) - 1.0).abs() < 1e-12);
        assert_eq!(acc.get(1), 0.0);
        assert!(acc.contains(0) && !acc.contains(1));

        acc.begin(4);
        assert!(acc.is_empty(), "epoch bump must invalidate previous round");
        assert_eq!(acc.get(2), 0.0);
    }

    #[test]
    fn touched_order_is_insertion_until_sorted() {
        let mut acc = DenseAccumulator::new();
        acc.begin(8);
        for b in [5u32, 1, 7, 1, 5, 3] {
            acc.add(b, 1.0);
        }
        assert_eq!(acc.touched(), &[5, 1, 7, 3]);
        acc.sort_touched();
        assert_eq!(acc.touched(), &[1, 3, 5, 7]);
        let entries: Vec<(u32, f64)> = acc.entries().collect();
        assert_eq!(entries, vec![(1, 2.0), (3, 1.0), (5, 2.0), (7, 1.0)]);
    }

    #[test]
    fn grows_between_rounds() {
        let mut acc = DenseAccumulator::new();
        acc.begin(2);
        acc.add(1, 1.0);
        acc.begin(10);
        acc.add(9, 2.0);
        assert!((acc.get(9) - 2.0).abs() < 1e-12);
        assert_eq!(acc.len(), 1);
    }

    #[test]
    fn index_map_rounds() {
        let mut map = DenseIndexMap::new();
        map.begin(5);
        map.insert(3, 0);
        map.insert(1, 1);
        assert_eq!(map.get(3), Some(0));
        assert_eq!(map.get(0), None);
        map.begin(5);
        assert_eq!(map.get(3), None, "new round forgets old entries");
    }
}
