//! Deterministic fan-out primitives — the thread-pool/partition layer
//! behind every multi-core sweep in the workspace.
//!
//! ## The house pattern
//!
//! The chunked CSR fill ([`crate::CsrGraph`]) proved the only parallelism
//! this codebase permits: **fixed chunk partition + position-identical
//! reduction**. Work is split by *canonical row ranges* decided up front
//! from the data alone (never from thread timing), each chunk writes a
//! disjoint slice of the output, and the merge is by position — so the
//! result is bit-identical to the serial pass at any thread count. This
//! module extracts that idiom so the sweep kernels (the A-TxAllo epoch
//! sweep, Louvain local moving) can reuse it instead of re-deriving the
//! `split_at_mut` plumbing:
//!
//! * [`entry_balanced_split`] — the `row_split` canonical-range rule:
//!   contiguous row ranges balanced by entry count, computed from a CSR
//!   offsets array.
//! * [`for_each_chunk_mut`] — scoped-thread execution over those ranges,
//!   each chunk owning a disjoint `&mut` window of one per-row output
//!   slice plus its own scratch instance.
//! * [`threads_from_env`] — the `TXALLO_THREADS` override backing the
//!   default of every thread-count knob ([`TxAlloParams::threads`],
//!   [`LouvainConfig::threads`]); unset means `1`, the exact serial
//!   code path.
//!
//! ## The canonical reduction tree
//!
//! The second idiom this module offers is **canonical chunking + fixed
//! tree merge**, for kernels that must *combine* per-chunk results
//! rather than write disjoint windows (Louvain aggregation, METIS
//! refinement bookkeeping, epoch ingestion folding):
//!
//! * [`canonical_chunk_count`] — the chunk count as a pure function of
//!   the input size (a work quantum and a data-derived cap), never of
//!   the thread count, so the chunk *shape* is an invariant of the data.
//! * [`fold_chunks`] — computes one partial result per canonical chunk
//!   (any number of workers, one chunk per worker slot, results
//!   reassembled by chunk index), so the partials themselves are
//!   independent of scheduling.
//! * [`reduce_tree`] — combines the partials in a fixed binary-tree
//!   order: adjacent pairs `(0,1) (2,3) …` per round, odd tail carried.
//!   The tree shape depends only on the chunk count — which depends
//!   only on the data — so the combine order is a pure function of the
//!   input.
//!
//! The combine operation handed to [`reduce_tree`] must be **exact**
//! under the tree's reassociation: elementwise integer adds, counter
//! sums, order-preserving concatenation, max/min under a total order.
//! Floating-point *summation* does not qualify wherever a serial code
//! path is pinned bitwise (reassociation changes bits): kernels keep
//! float folds either per-slot (each accumulator slot's contributions
//! concatenated in chunk order — the serial order — then folded
//! serially) or in serial caller code over the chunk-ordered partials.
//! That discipline is what keeps `threads = 1` the *exact* serial code
//! path while every other thread count reproduces it bit-for-bit.
//!
//! What this module deliberately does **not** offer: work stealing,
//! atomics, or any reduction whose float summation order depends on
//! scheduling — that is the determinism contract's "Parallel reduction"
//! rule (ARCHITECTURE.md).
//!
//! [`TxAlloParams::threads`]: https://docs.rs/txallo-core
//! [`LouvainConfig::threads`]: https://docs.rs/txallo-louvain

/// Thread-count default shared by every sweep knob: the `TXALLO_THREADS`
/// environment variable, parsed as `usize`. Unset, empty or unparsable
/// values mean `1` (the serial path); `0` means "one per available core".
///
/// The returned count only ever changes *how* a sweep is computed, never
/// its result — the partition layer guarantees bit-identical output at
/// any thread count — so reading an environment variable here does not
/// violate determinism.
pub fn threads_from_env() -> usize {
    match std::env::var("TXALLO_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => resolve_threads(n),
            Err(_) => 1,
        },
        Err(_) => 1,
    }
}

/// Resolves a requested thread count: `0` means "one per available core",
/// anything else is taken literally (`1` = serial).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    }
}

/// Canonical row-range boundaries `[0, b₁, …, n]` with roughly equal
/// entry counts per chunk, computed from a CSR `offsets` array
/// (`offsets.len() == n + 1`, `offsets[n]` = total entries).
///
/// This is the `row_split` rule of the chunked CSR fill, extracted: the
/// split depends only on the offsets (data), never on scheduling, so the
/// same input always partitions the same way. Degenerate requests
/// (`chunks < 2`, fewer rows than chunks) collapse to the single serial
/// range `[0, n]`.
///
/// ```
/// use txallo_graph::par::entry_balanced_split;
/// // 4 rows with entry counts 5, 1, 5, 1.
/// let offsets = [0u32, 5, 6, 11, 12];
/// assert_eq!(entry_balanced_split(&offsets, 2), vec![0, 2, 4]);
/// assert_eq!(entry_balanced_split(&offsets, 1), vec![0, 4]);
/// ```
pub fn entry_balanced_split(offsets: &[u32], chunks: usize) -> Vec<usize> {
    let n = offsets.len() - 1;
    if chunks < 2 || n < chunks {
        return vec![0, n];
    }
    let entries = offsets[n] as usize;
    let per = entries.div_ceil(chunks).max(1);
    let mut bounds = vec![0usize];
    let mut next = per;
    for v in 0..n {
        if offsets[v + 1] as usize >= next && v + 1 < n {
            bounds.push(v + 1);
            next = offsets[v + 1] as usize + per;
        }
    }
    bounds.push(n);
    bounds
}

/// Runs `f(lo, chunk, scratch)` for every chunk of `bounds`
/// (as produced by [`entry_balanced_split`]): chunk `c` covers rows
/// `bounds[c]..bounds[c + 1]`, receives the matching disjoint `&mut`
/// window of `data` (so `chunk[i]` is row `lo + i`) and exclusive use of
/// `scratch[c]`.
///
/// A single chunk runs inline on the calling thread — no spawn at all —
/// which is what makes `threads == 1` the exact serial code path of
/// every caller. Multiple chunks run under [`std::thread::scope`], one
/// thread per chunk; because every chunk writes only its own window and
/// the windows are assigned by position, the combined `data` is
/// bit-identical to a serial left-to-right pass regardless of which
/// chunk finishes first.
///
/// # Panics
/// Panics when `scratch` has fewer instances than chunks or `bounds`
/// does not cover `data`.
pub fn for_each_chunk_mut<T, S, F>(bounds: &[usize], data: &mut [T], scratch: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    let chunks = bounds.len() - 1;
    assert!(scratch.len() >= chunks, "one scratch instance per chunk");
    assert_eq!(*bounds.last().expect("non-empty bounds"), data.len()); // txallo-lint: allow(lib-unwrap) — chunks = bounds.len() - 1 did not underflow, so bounds has at least one element
    if chunks == 1 {
        f(bounds[0], data, &mut scratch[0]);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest: &mut [T] = data;
        let mut rest_s: &mut [S] = scratch;
        for pair in bounds.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let (s, tail_s) = rest_s.split_at_mut(1);
            rest_s = tail_s;
            let s0 = &mut s[0];
            let f = &f;
            scope.spawn(move || f(lo, chunk, s0));
        }
    });
}

/// Canonical chunk count for a reduction over `entries` work items: one
/// chunk per `quantum` items, clamped to `1..=max_chunks`. Both `quantum`
/// (a fixed work-granularity constant) and `max_chunks` (typically a
/// scratch-memory budget derived from the data, e.g. "histograms of `C`
/// communities must fit a fixed byte budget") are functions of the data —
/// **never of the thread count** — so the chunk shape, and with it every
/// partial-result boundary, is an invariant of the input.
///
/// ```
/// use txallo_graph::par::canonical_chunk_count;
/// assert_eq!(canonical_chunk_count(10_000, 4096, 64), 2);
/// assert_eq!(canonical_chunk_count(5, 4096, 64), 1);
/// assert_eq!(canonical_chunk_count(usize::MAX, 1, 8), 8);
/// ```
pub fn canonical_chunk_count(entries: usize, quantum: usize, max_chunks: usize) -> usize {
    (entries / quantum.max(1)).clamp(1, max_chunks.max(1))
}

/// Computes one partial result per canonical chunk of `bounds` (as
/// produced by [`entry_balanced_split`]): chunk `c` covers
/// `bounds[c]..bounds[c + 1]` and yields `f(c, lo, hi)`. Returns the
/// partials **in chunk order**, regardless of which worker computed
/// which chunk or in what order they finished.
///
/// `threads <= 1` (after [`resolve_threads`]) runs the chunks inline on
/// the calling thread, left to right — the exact serial code path.
/// More workers split the chunk list into contiguous runs, one per
/// worker; since each partial is a pure function of its chunk range and
/// lands in its own slot, the returned vector is bit-identical at every
/// worker count. Callers combine the partials with [`reduce_tree`] (or
/// serially in chunk order, for float folds pinned against a serial
/// path).
///
/// # Panics
/// Panics when `bounds` is empty.
pub fn fold_chunks<R, F>(threads: usize, bounds: &[usize], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize, usize) -> R + Sync,
{
    assert!(!bounds.is_empty(), "bounds must cover at least `[0, n]`");
    let chunks = bounds.len() - 1;
    let workers = resolve_threads(threads).min(chunks);
    if workers <= 1 {
        return bounds
            .windows(2)
            .enumerate()
            .map(|(c, pair)| f(c, pair[0], pair[1]))
            .collect();
    }
    let mut out: Vec<Option<R>> = (0..chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<R>] = &mut out;
        let mut start = 0usize;
        for w in 0..workers {
            let end = ((w + 1) * chunks) / workers;
            let (window, tail) = rest.split_at_mut(end - start);
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in window.iter_mut().enumerate() {
                    let c = start + i;
                    *slot = Some(f(c, bounds[c], bounds[c + 1]));
                }
            });
            start = end;
        }
    });
    out.into_iter()
        .map(|r| r.expect("scope joined every worker, so every chunk slot was filled")) // txallo-lint: allow(lib-unwrap) — the worker windows partition 0..chunks exactly, and thread::scope joins before returning
        .collect()
}

/// Combines `parts` in a **fixed binary-tree order**: each round merges
/// adjacent pairs `(0,1) (2,3) …` with `combine(left, right)`, carrying
/// an odd tail unchanged, until one value remains. Returns `None` for an
/// empty input.
///
/// The tree shape depends only on `parts.len()` — with
/// [`canonical_chunk_count`] chunking, a pure function of the data — so
/// the combine order never varies with the thread count. `combine` must
/// be **exact** under this reassociation (elementwise integer adds,
/// order-preserving concatenation, max/min under a total order, …);
/// floating-point summation does not qualify wherever a serial path is
/// pinned bitwise — keep float folds per-slot or serial over the
/// chunk-ordered partials instead (see the module docs).
///
/// ```
/// use txallo_graph::par::reduce_tree;
/// // Concatenation is order-preserving: the tree yields chunk order.
/// let parts = vec![vec![1], vec![2, 3], vec![4]];
/// assert_eq!(
///     reduce_tree(parts, |mut a, mut b| { a.append(&mut b); a }),
///     Some(vec![1, 2, 3, 4]),
/// );
/// assert_eq!(reduce_tree(Vec::<u32>::new(), |a, _| a), None);
/// ```
pub fn reduce_tree<R>(mut parts: Vec<R>, mut combine: impl FnMut(R, R) -> R) -> Option<R> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => next.push(combine(left, right)),
                None => next.push(left),
            }
        }
        parts = next;
    }
    parts.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_rows_and_balances_entries() {
        let offsets: Vec<u32> = vec![0, 50, 50, 60, 200, 210, 220, 400, 410, 420, 500];
        for chunks in [2usize, 3, 4] {
            let bounds = entry_balanced_split(&offsets, chunks);
            assert_eq!(*bounds.first().unwrap(), 0);
            assert_eq!(*bounds.last().unwrap(), 10);
            assert!(
                bounds.windows(2).all(|p| p[0] < p[1]),
                "strictly increasing"
            );
        }
        assert_eq!(entry_balanced_split(&offsets, 1), vec![0, 10]);
        assert_eq!(entry_balanced_split(&[0], 4), vec![0, 0], "empty");
        assert_eq!(
            entry_balanced_split(&[0, 1, 2], 5),
            vec![0, 2],
            "fewer rows than chunks"
        );
    }

    #[test]
    fn split_is_deterministic() {
        let offsets: Vec<u32> = (0..=257u32).map(|i| i * 3).collect();
        assert_eq!(
            entry_balanced_split(&offsets, 4),
            entry_balanced_split(&offsets, 4)
        );
    }

    #[test]
    fn chunked_run_matches_serial_run() {
        // Each row's output is a pure function of its index; the chunked
        // pass must reproduce the serial array exactly, with every chunk
        // seeing its own scratch.
        let offsets: Vec<u32> = (0..=100u32).map(|i| i * i / 4).collect();
        let mut serial = vec![0u64; 100];
        for (i, slot) in serial.iter_mut().enumerate() {
            *slot = (i as u64) * 17 + 3;
        }
        for chunks in [1usize, 2, 3, 5, 8] {
            let bounds = entry_balanced_split(&offsets, chunks);
            let mut data = vec![0u64; 100];
            let mut scratch = vec![0usize; bounds.len() - 1];
            for_each_chunk_mut(&bounds, &mut data, &mut scratch, |lo, chunk, used| {
                for (idx, slot) in chunk.iter_mut().enumerate() {
                    *slot = ((lo + idx) as u64) * 17 + 3;
                }
                *used += chunk.len();
            });
            assert_eq!(data, serial, "{chunks} chunks");
            assert_eq!(
                scratch.iter().sum::<usize>(),
                100,
                "chunks partition the rows"
            );
        }
    }

    #[test]
    fn fold_chunks_is_worker_count_invariant() {
        // Partials are pure functions of the chunk range; every worker
        // count must return the identical chunk-ordered vector.
        let bounds: Vec<usize> = vec![0, 7, 13, 20, 21, 40];
        let serial = fold_chunks(1, &bounds, |c, lo, hi| (c, lo, hi, (lo..hi).sum::<usize>()));
        for threads in [2usize, 3, 5, 8, 64] {
            let par = fold_chunks(threads, &bounds, |c, lo, hi| {
                (c, lo, hi, (lo..hi).sum::<usize>())
            });
            assert_eq!(par, serial, "{threads} workers");
        }
        assert_eq!(serial.len(), 5);
        assert_eq!(serial[3], (3, 20, 21, 20));
    }

    #[test]
    fn fold_chunks_handles_degenerate_bounds() {
        assert!(fold_chunks(4, &[0], |_, _, _| 0u32).is_empty(), "no chunks");
        assert_eq!(fold_chunks(4, &[0, 0], |c, lo, hi| (c, lo, hi)).len(), 1);
    }

    #[test]
    fn reduce_tree_shape_is_fixed_by_part_count() {
        // Parenthesize the combine to observe the tree: 5 parts must
        // always merge as (((01)(23))4) — adjacent pairs, odd tail
        // carried, regardless of anything but the part count.
        let parts: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let merged = reduce_tree(parts, |a, b| format!("({a}{b})"));
        assert_eq!(merged.as_deref(), Some("(((01)(23))4)"));
        assert_eq!(reduce_tree(Vec::<String>::new(), |a, _| a), None);
        assert_eq!(
            reduce_tree(vec![9u64], |a, b| a + b),
            Some(9),
            "single part passes through untouched"
        );
    }

    #[test]
    fn reduce_tree_elementwise_histogram_merge_matches_serial() {
        // The aggregation kernel's use case: per-chunk integer degree
        // histograms merged elementwise. Integer adds are exact under
        // any association, so the tree must equal a serial left fold.
        let parts: Vec<Vec<u32>> = (0..7)
            .map(|c| (0..16).map(|i| (c * 31 + i * 7) % 13).collect())
            .collect();
        let serial = parts.iter().skip(1).fold(parts[0].clone(), |mut acc, p| {
            for (a, b) in acc.iter_mut().zip(p) {
                *a += b;
            }
            acc
        });
        let tree = reduce_tree(parts, |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        assert_eq!(tree, Some(serial));
    }

    #[test]
    fn canonical_chunk_count_is_clamped_and_data_driven() {
        assert_eq!(canonical_chunk_count(0, 4096, 64), 1);
        assert_eq!(canonical_chunk_count(4096 * 3, 4096, 64), 3);
        assert_eq!(canonical_chunk_count(1 << 30, 4096, 16), 16);
        assert_eq!(canonical_chunk_count(100, 0, 0), 1, "degenerate caps");
    }

    #[test]
    fn resolve_threads_semantics() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1, "0 resolves to the core count");
    }
}
