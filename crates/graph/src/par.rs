//! Deterministic fan-out primitives — the thread-pool/partition layer
//! behind every multi-core sweep in the workspace.
//!
//! ## The house pattern
//!
//! The chunked CSR fill ([`crate::CsrGraph`]) proved the only parallelism
//! this codebase permits: **fixed chunk partition + position-identical
//! reduction**. Work is split by *canonical row ranges* decided up front
//! from the data alone (never from thread timing), each chunk writes a
//! disjoint slice of the output, and the merge is by position — so the
//! result is bit-identical to the serial pass at any thread count. This
//! module extracts that idiom so the sweep kernels (the A-TxAllo epoch
//! sweep, Louvain local moving) can reuse it instead of re-deriving the
//! `split_at_mut` plumbing:
//!
//! * [`entry_balanced_split`] — the `row_split` canonical-range rule:
//!   contiguous row ranges balanced by entry count, computed from a CSR
//!   offsets array.
//! * [`for_each_chunk_mut`] — scoped-thread execution over those ranges,
//!   each chunk owning a disjoint `&mut` window of one per-row output
//!   slice plus its own scratch instance.
//! * [`threads_from_env`] — the `TXALLO_THREADS` override backing the
//!   default of every thread-count knob ([`TxAlloParams::threads`],
//!   [`LouvainConfig::threads`]); unset means `1`, the exact serial
//!   code path.
//!
//! What this module deliberately does **not** offer: work stealing,
//! atomics, or any reduction whose float summation order depends on
//! scheduling. Cross-chunk folds stay in caller code, serial, in row
//! order — that is the determinism contract's "Parallel reduction" rule
//! (ARCHITECTURE.md).
//!
//! [`TxAlloParams::threads`]: https://docs.rs/txallo-core
//! [`LouvainConfig::threads`]: https://docs.rs/txallo-louvain

/// Thread-count default shared by every sweep knob: the `TXALLO_THREADS`
/// environment variable, parsed as `usize`. Unset, empty or unparsable
/// values mean `1` (the serial path); `0` means "one per available core".
///
/// The returned count only ever changes *how* a sweep is computed, never
/// its result — the partition layer guarantees bit-identical output at
/// any thread count — so reading an environment variable here does not
/// violate determinism.
pub fn threads_from_env() -> usize {
    match std::env::var("TXALLO_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => resolve_threads(n),
            Err(_) => 1,
        },
        Err(_) => 1,
    }
}

/// Resolves a requested thread count: `0` means "one per available core",
/// anything else is taken literally (`1` = serial).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested
    }
}

/// Canonical row-range boundaries `[0, b₁, …, n]` with roughly equal
/// entry counts per chunk, computed from a CSR `offsets` array
/// (`offsets.len() == n + 1`, `offsets[n]` = total entries).
///
/// This is the `row_split` rule of the chunked CSR fill, extracted: the
/// split depends only on the offsets (data), never on scheduling, so the
/// same input always partitions the same way. Degenerate requests
/// (`chunks < 2`, fewer rows than chunks) collapse to the single serial
/// range `[0, n]`.
///
/// ```
/// use txallo_graph::par::entry_balanced_split;
/// // 4 rows with entry counts 5, 1, 5, 1.
/// let offsets = [0u32, 5, 6, 11, 12];
/// assert_eq!(entry_balanced_split(&offsets, 2), vec![0, 2, 4]);
/// assert_eq!(entry_balanced_split(&offsets, 1), vec![0, 4]);
/// ```
pub fn entry_balanced_split(offsets: &[u32], chunks: usize) -> Vec<usize> {
    let n = offsets.len() - 1;
    if chunks < 2 || n < chunks {
        return vec![0, n];
    }
    let entries = offsets[n] as usize;
    let per = entries.div_ceil(chunks).max(1);
    let mut bounds = vec![0usize];
    let mut next = per;
    for v in 0..n {
        if offsets[v + 1] as usize >= next && v + 1 < n {
            bounds.push(v + 1);
            next = offsets[v + 1] as usize + per;
        }
    }
    bounds.push(n);
    bounds
}

/// Runs `f(lo, chunk, scratch)` for every chunk of `bounds`
/// (as produced by [`entry_balanced_split`]): chunk `c` covers rows
/// `bounds[c]..bounds[c + 1]`, receives the matching disjoint `&mut`
/// window of `data` (so `chunk[i]` is row `lo + i`) and exclusive use of
/// `scratch[c]`.
///
/// A single chunk runs inline on the calling thread — no spawn at all —
/// which is what makes `threads == 1` the exact serial code path of
/// every caller. Multiple chunks run under [`std::thread::scope`], one
/// thread per chunk; because every chunk writes only its own window and
/// the windows are assigned by position, the combined `data` is
/// bit-identical to a serial left-to-right pass regardless of which
/// chunk finishes first.
///
/// # Panics
/// Panics when `scratch` has fewer instances than chunks or `bounds`
/// does not cover `data`.
pub fn for_each_chunk_mut<T, S, F>(bounds: &[usize], data: &mut [T], scratch: &mut [S], f: F)
where
    T: Send,
    S: Send,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    let chunks = bounds.len() - 1;
    assert!(scratch.len() >= chunks, "one scratch instance per chunk");
    assert_eq!(*bounds.last().expect("non-empty bounds"), data.len()); // txallo-lint: allow(lib-unwrap) — chunks = bounds.len() - 1 did not underflow, so bounds has at least one element
    if chunks == 1 {
        f(bounds[0], data, &mut scratch[0]);
        return;
    }
    std::thread::scope(|scope| {
        let mut rest: &mut [T] = data;
        let mut rest_s: &mut [S] = scratch;
        for pair in bounds.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let (chunk, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let (s, tail_s) = rest_s.split_at_mut(1);
            rest_s = tail_s;
            let s0 = &mut s[0];
            let f = &f;
            scope.spawn(move || f(lo, chunk, s0));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_rows_and_balances_entries() {
        let offsets: Vec<u32> = vec![0, 50, 50, 60, 200, 210, 220, 400, 410, 420, 500];
        for chunks in [2usize, 3, 4] {
            let bounds = entry_balanced_split(&offsets, chunks);
            assert_eq!(*bounds.first().unwrap(), 0);
            assert_eq!(*bounds.last().unwrap(), 10);
            assert!(
                bounds.windows(2).all(|p| p[0] < p[1]),
                "strictly increasing"
            );
        }
        assert_eq!(entry_balanced_split(&offsets, 1), vec![0, 10]);
        assert_eq!(entry_balanced_split(&[0], 4), vec![0, 0], "empty");
        assert_eq!(
            entry_balanced_split(&[0, 1, 2], 5),
            vec![0, 2],
            "fewer rows than chunks"
        );
    }

    #[test]
    fn split_is_deterministic() {
        let offsets: Vec<u32> = (0..=257u32).map(|i| i * 3).collect();
        assert_eq!(
            entry_balanced_split(&offsets, 4),
            entry_balanced_split(&offsets, 4)
        );
    }

    #[test]
    fn chunked_run_matches_serial_run() {
        // Each row's output is a pure function of its index; the chunked
        // pass must reproduce the serial array exactly, with every chunk
        // seeing its own scratch.
        let offsets: Vec<u32> = (0..=100u32).map(|i| i * i / 4).collect();
        let mut serial = vec![0u64; 100];
        for (i, slot) in serial.iter_mut().enumerate() {
            *slot = (i as u64) * 17 + 3;
        }
        for chunks in [1usize, 2, 3, 5, 8] {
            let bounds = entry_balanced_split(&offsets, chunks);
            let mut data = vec![0u64; 100];
            let mut scratch = vec![0usize; bounds.len() - 1];
            for_each_chunk_mut(&bounds, &mut data, &mut scratch, |lo, chunk, used| {
                for (idx, slot) in chunk.iter_mut().enumerate() {
                    *slot = ((lo + idx) as u64) * 17 + 3;
                }
                *used += chunk.len();
            });
            assert_eq!(data, serial, "{chunks} chunks");
            assert_eq!(
                scratch.iter().sum::<usize>(),
                100,
                "chunks partition the rows"
            );
        }
    }

    #[test]
    fn resolve_threads_semantics() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1, "0 resolves to the core count");
    }
}
