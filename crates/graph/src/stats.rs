//! Structural statistics of the transaction graph (Fig. 1 analysis).

use crate::traits::{NodeId, WeightedGraph};

/// Summary of a transaction graph's structure: the numbers behind the
/// paper's Fig. 1 narrative (long-tailed activity, one dominant account).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes (accounts).
    pub node_count: usize,
    /// Total edge weight (= number of transactions).
    pub total_weight: f64,
    /// Largest per-node incident weight.
    pub max_incident_weight: f64,
    /// Share of the total incident weight carried by the hottest node.
    ///
    /// (Each transaction contributes its weight to up to `|A_Tx|` incident
    /// sums; for 1-to-1 traffic this is ≈ "fraction of transactions that
    /// touch the hottest account" — ~11% in the paper's dataset.)
    pub hottest_share: f64,
    /// Mean incident weight.
    pub mean_incident_weight: f64,
    /// Gini coefficient of incident weights — 0 is perfectly uniform,
    /// →1 is maximally concentrated. Quantifies the "long tail".
    pub gini: f64,
    /// Deciles of the incident-weight distribution (10 values, ascending).
    pub incident_deciles: [f64; 10],
    /// Fraction of nodes with ≤ 2 incident transactions ("most accounts are
    /// not active and only have very few transaction records", §VI-A).
    pub low_activity_fraction: f64,
}

impl GraphStats {
    /// Computes statistics over any weighted graph.
    pub fn compute(g: &impl WeightedGraph) -> Self {
        let n = g.node_count();
        if n == 0 {
            return Self {
                node_count: 0,
                total_weight: 0.0,
                max_incident_weight: 0.0,
                hottest_share: 0.0,
                mean_incident_weight: 0.0,
                gini: 0.0,
                incident_deciles: [0.0; 10],
                low_activity_fraction: 0.0,
            };
        }
        let mut weights: Vec<f64> = (0..n as NodeId).map(|v| g.incident_weight(v)).collect();
        // txallo-lint: allow(no-unstable-float-sort, lib-unwrap) — sorting bare f64 values (no payload, equal keys indistinguishable); incident weights are finite sums of finite transaction weights
        weights.sort_unstable_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
        let sum: f64 = weights.iter().sum();
        let max = *weights.last().expect("n > 0"); // txallo-lint: allow(lib-unwrap) — the n == 0 case returned the zero struct a few lines above
        let mean = sum / n as f64;
        // Gini via the sorted-rank formula.
        let mut rank_weighted = 0.0;
        for (i, w) in weights.iter().enumerate() {
            rank_weighted += (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * w;
        }
        let gini = if sum > 0.0 {
            rank_weighted / (n as f64 * sum)
        } else {
            0.0
        };
        let mut deciles = [0.0; 10];
        for (d, slot) in deciles.iter_mut().enumerate() {
            let idx = ((d + 1) * n / 10).saturating_sub(1).min(n - 1);
            *slot = weights[idx];
        }
        let low = weights.iter().filter(|&&w| w <= 2.0).count();
        Self {
            node_count: n,
            total_weight: g.total_weight(),
            max_incident_weight: max,
            hottest_share: if g.total_weight() > 0.0 {
                max / g.total_weight()
            } else {
                0.0
            },
            mean_incident_weight: mean,
            gini,
            incident_deciles: deciles,
            low_activity_fraction: low as f64 / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyGraph;

    #[test]
    fn uniform_graph_has_low_gini() {
        // Ring: everyone has identical incident weight.
        let n = 10u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n, 1.0)).collect();
        let g = AdjacencyGraph::from_edges(n as usize, edges);
        let s = GraphStats::compute(&g);
        assert!(
            s.gini.abs() < 1e-9,
            "uniform weights must give gini 0, got {}",
            s.gini
        );
        assert!((s.max_incident_weight - 2.0).abs() < 1e-12);
    }

    #[test]
    fn star_graph_is_concentrated() {
        // Hub node 0 touches every transaction.
        let edges: Vec<_> = (1..100u32).map(|v| (0u32, v, 1.0)).collect();
        let g = AdjacencyGraph::from_edges(100, edges);
        let s = GraphStats::compute(&g);
        assert!(
            s.gini > 0.4,
            "star graph should be concentrated, gini={}",
            s.gini
        );
        assert!(
            (s.hottest_share - 1.0).abs() < 1e-12,
            "hub touches all 99 tx"
        );
        assert!(s.low_activity_fraction > 0.9);
    }

    #[test]
    fn empty_graph_is_all_zero() {
        let g = AdjacencyGraph::from_edges(0, Vec::new());
        let s = GraphStats::compute(&g);
        assert_eq!(s.node_count, 0);
        assert_eq!(s.gini, 0.0);
    }
}
