//! Graph abstractions shared by the allocators and community detectors.

/// Dense node index. Accounts are interned to consecutive `NodeId`s so that
/// per-node state can live in flat vectors (perf-book: prefer indices over
/// hashing in hot loops).
pub type NodeId = u32;

/// An undirected weighted graph with optional self-loops.
///
/// Conventions (these must agree across every implementor, they are what
/// makes the paper's Eq. 5–8 algebra line up):
/// * `total_weight` counts every unordered edge once, self-loops included
///   once. For a transaction graph this equals `|T|` (each transaction
///   contributes total weight 1).
/// * `incident_weight(v)` is `d_v = Σ_u w{v,u}` with the self-loop counted
///   **once** — the quantity the TxAllo delta formulas call `w{v, V}`.
/// * `strength(v)` is the graph-theoretic weighted degree with the
///   self-loop counted **twice** — the quantity Louvain modularity uses.
pub trait WeightedGraph {
    /// Number of nodes (node ids are `0..node_count()`).
    fn node_count(&self) -> usize;

    /// Sum of all edge weights, each unordered edge once, self-loops once.
    fn total_weight(&self) -> f64;

    /// Self-loop weight of `v` (0 if none).
    fn self_loop(&self, v: NodeId) -> f64;

    /// `d_v`: incident weight with self-loop counted once.
    fn incident_weight(&self, v: NodeId) -> f64;

    /// Weighted degree with self-loop counted twice (modularity convention).
    fn strength(&self, v: NodeId) -> f64 {
        self.incident_weight(v) + self.self_loop(v)
    }

    /// Calls `f(u, w)` for every neighbor `u ≠ v` with edge weight `w`.
    ///
    /// Iteration order is unspecified; deterministic algorithms must not
    /// depend on it (they accumulate into per-community buckets instead).
    ///
    /// Contract: each distinct neighbor is reported **exactly once**, with
    /// its total accumulated weight (parallel edges are merged at
    /// ingestion), and the number of callbacks equals
    /// [`WeightedGraph::neighbor_count`]. The counting-sort CSR snapshot
    /// ([`crate::CsrGraph::from_graph`]) sizes and fills its rows from
    /// this agreement and verifies it at build time.
    fn for_each_neighbor(&self, v: NodeId, f: impl FnMut(NodeId, f64));

    /// Number of neighbors of `v` (excluding the self-loop).
    fn neighbor_count(&self, v: NodeId) -> usize;
}
