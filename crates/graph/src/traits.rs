//! Graph abstractions shared by the allocators and community detectors.

/// Dense node index. Accounts are interned to consecutive `NodeId`s so that
/// per-node state can live in flat vectors (perf-book: prefer indices over
/// hashing in hot loops).
pub type NodeId = u32;

/// Checked `usize → u32` conversion for id/count boundaries.
///
/// Node ids and per-node counts are `u32` by design (the interner refuses
/// to mint ids past `u32::MAX` with [`crate::IdSpaceExhausted`]), so any
/// in-range length derived from them fits. This helper is the sanctioned
/// way to cross that boundary: it keeps the check visible instead of a
/// silent `as` truncation, and panics with a clear message if a future
/// change ever violates the id-space invariant.
#[inline]
pub fn fit_u32(n: usize) -> u32 {
    // txallo-lint: allow(lib-unwrap) — this IS the checked boundary: the interner caps ids at u32::MAX, so in-range lengths always fit and an overflow here is a program bug worth stopping on
    u32::try_from(n).expect("count exceeds the u32 id space")
}

/// A borrowed view of one node's adjacency as up to two ascending-id
/// sorted runs (see [`WeightedGraph::row_view`]).
///
/// The two runs are individually sorted ascending by id, their id sets are
/// disjoint, and merging them yields exactly the node's neighbor set. A
/// fully-merged row has an empty tail, in which case the run slices *are*
/// the row. `run_ids`/`run_ws` and `tail_ids`/`tail_ws` are parallel.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    /// Main sorted run: neighbor ids ascending.
    pub run_ids: &'a [NodeId],
    /// Weights parallel to `run_ids`.
    pub run_ws: &'a [f64],
    /// Pending sorted tail (empty when the row is fully merged).
    pub tail_ids: &'a [NodeId],
    /// Weights parallel to `tail_ids`.
    pub tail_ws: &'a [f64],
}

/// An undirected weighted graph with optional self-loops.
///
/// Conventions (these must agree across every implementor, they are what
/// makes the paper's Eq. 5–8 algebra line up):
/// * `total_weight` counts every unordered edge once, self-loops included
///   once. For a transaction graph this equals `|T|` (each transaction
///   contributes total weight 1).
/// * `incident_weight(v)` is `d_v = Σ_u w{v,u}` with the self-loop counted
///   **once** — the quantity the TxAllo delta formulas call `w{v, V}`.
/// * `strength(v)` is the graph-theoretic weighted degree with the
///   self-loop counted **twice** — the quantity Louvain modularity uses.
pub trait WeightedGraph {
    /// Number of nodes (node ids are `0..node_count()`).
    fn node_count(&self) -> usize;

    /// Sum of all edge weights, each unordered edge once, self-loops once.
    fn total_weight(&self) -> f64;

    /// Self-loop weight of `v` (0 if none).
    fn self_loop(&self, v: NodeId) -> f64;

    /// `d_v`: incident weight with self-loop counted once.
    fn incident_weight(&self, v: NodeId) -> f64;

    /// Weighted degree with self-loop counted twice (modularity convention).
    fn strength(&self, v: NodeId) -> f64 {
        self.incident_weight(v) + self.self_loop(v)
    }

    /// Calls `f(u, w)` for every neighbor `u ≠ v` with edge weight `w`.
    ///
    /// Iteration order is unspecified; deterministic algorithms must not
    /// depend on it (they accumulate into per-community buckets instead).
    ///
    /// Contract: each distinct neighbor is reported **exactly once**, with
    /// its total accumulated weight (parallel edges are merged at
    /// ingestion), and the number of callbacks equals
    /// [`WeightedGraph::neighbor_count`]. The counting-sort CSR snapshot
    /// ([`crate::CsrGraph::from_graph`]) sizes and fills its rows from
    /// this agreement and verifies it at build time.
    fn for_each_neighbor(&self, v: NodeId, f: impl FnMut(NodeId, f64));

    /// Number of neighbors of `v` (excluding the self-loop).
    fn neighbor_count(&self, v: NodeId) -> usize;

    /// The adjacency of `v` as sorted runs, when this graph stores rows
    /// that way ([`RowView`]); `None` when only callback iteration is
    /// available.
    ///
    /// Contract: an implementation must answer uniformly — `Some` for
    /// every node or `None` for every node — so snapshot builders can pick
    /// a copy strategy once per build. Consumers must produce bit-identical
    /// results through either path (both iterate neighbors in the same
    /// ascending order with the same weights); the view only removes the
    /// callback indirection and enables blocked gathers over the slices.
    fn row_view(&self, v: NodeId) -> Option<RowView<'_>> {
        let _ = v;
        None
    }
}
