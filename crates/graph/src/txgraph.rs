//! The incremental transaction graph.

use txallo_model::{AccountId, Block, Ledger, Transaction};

use crate::interner::AccountInterner;
use crate::residency::{MemoryFootprint, Residency, ResidencyConfig};
use crate::slab::SortedRunStore;
use crate::traits::{fit_u32, NodeId, RowView, WeightedGraph};

/// The interned node view of one block: per-transaction dense node ids
/// plus the deduplicated touched set `V̂` — everything an epoch consumer
/// needs without ever re-hashing an [`AccountId`].
///
/// Produced by [`TxGraph::ingest_block_nodes`]. `tx_nodes(i)` is the
/// interned image of transaction `i`'s deduplicated account set, in
/// `account_set` order, so weight-delta folds (`AtxAlloSession`) can
/// replay the exact clique expansion ingestion performed.
#[derive(Debug, Clone, Default)]
pub struct BlockNodes {
    /// Flattened per-transaction node sets; transaction `i` owns
    /// `tx_nodes[tx_offsets[i]..tx_offsets[i + 1]]`.
    tx_offsets: Vec<u32>,
    tx_nodes: Vec<NodeId>,
    /// Deduplicated touched nodes, ascending.
    touched: Vec<NodeId>,
}

impl BlockNodes {
    /// Number of transactions in the block.
    pub fn tx_count(&self) -> usize {
        self.tx_offsets.len().saturating_sub(1)
    }

    /// Interned account set of transaction `i` (deduplicated, in
    /// `account_set` order).
    pub fn tx_nodes(&self, i: usize) -> &[NodeId] {
        &self.tx_nodes[self.tx_offsets[i] as usize..self.tx_offsets[i + 1] as usize]
    }

    /// The deduplicated touched node set `V̂`, ascending — the A-TxAllo
    /// epoch input.
    pub fn touched(&self) -> &[NodeId] {
        &self.touched
    }

    /// Consumes the view, keeping only the touched set.
    pub fn into_touched(self) -> Vec<NodeId> {
        self.touched
    }
}

/// Weighted undirected transaction graph (Definition 2) with incremental
/// ingestion.
///
/// ```
/// use txallo_graph::{TxGraph, WeightedGraph};
/// use txallo_model::{AccountId, Transaction};
///
/// let mut g = TxGraph::new();
/// g.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
/// g.ingest_transaction(&Transaction::transfer(AccountId(2), AccountId(3)));
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.total_weight(), 2.0); // one unit of weight per transaction
/// ```
///
/// Per-node adjacency lives in a shared [`SortedRunStore`] arena: each row
/// is an ascending-id sorted run with a small amortized-merge tail, so the
/// mutable graph is CSR-shaped *by construction* — repeated transactions
/// between the same pair still accumulate weight in place (binary search
/// instead of a hash probe, chronological accumulation either way), and
/// every snapshot the sweep kernels run on assembles its rows by straight
/// run copies instead of hash iteration plus sorting.
/// [`TxGraph::for_each_neighbor`] therefore always reports neighbors in
/// ascending id order. Per-node scalars (`incident weight`, self-loop) are
/// flat vectors, following the perf-book advice to keep hot per-node state
/// unboxed and index-addressed.
#[derive(Debug, Clone, Default)]
pub struct TxGraph {
    interner: AccountInterner,
    adjacency: SortedRunStore,
    self_loops: Vec<f64>,
    incident: Vec<f64>,
    total_weight: f64,
    edge_count: usize,
    transaction_count: usize,
    /// Cold-row eviction state (out-of-core replay); `None` keeps every
    /// row resident forever — the historical behavior.
    residency: Option<Box<Residency>>,
}

impl TxGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the graph of an entire ledger.
    pub fn from_ledger(ledger: &Ledger) -> Self {
        let mut g = Self::new();
        for block in ledger.blocks() {
            for tx in block.transactions() {
                g.ingest_transaction(tx);
            }
        }
        g
    }

    /// Builds the graph from a flat transaction slice.
    pub fn from_transactions<'a>(txs: impl IntoIterator<Item = &'a Transaction>) -> Self {
        let mut g = Self::new();
        for tx in txs {
            g.ingest_transaction(tx);
        }
        g
    }

    /// Rebuilds a graph from checkpointed parts: the interned accounts in
    /// node order, the adjacency as one flat CSR triple
    /// (`row_offsets[v]..row_offsets[v + 1]` indexes node `v`'s ascending
    /// neighbors), and the per-node/global scalars **bit-for-bit** — the
    /// float fields are chronological accumulations that must never be
    /// recomputed on restore.
    ///
    /// The rows land fully merged in the slab
    /// ([`SortedRunStore::push_row_from_sorted`]), so every later
    /// ingestion, snapshot, and order-dependent float fold behaves exactly
    /// as it would have on the uninterrupted graph.
    #[allow(clippy::too_many_arguments)]
    pub fn from_checkpoint_parts(
        accounts: &[AccountId],
        row_offsets: &[usize],
        adj_ids: &[NodeId],
        adj_ws: &[f64],
        self_loops: Vec<f64>,
        incident: Vec<f64>,
        total_weight: f64,
        edge_count: usize,
        transaction_count: usize,
    ) -> Self {
        let n = accounts.len();
        assert_eq!(row_offsets.len(), n + 1, "row offsets cover every node");
        assert_eq!(self_loops.len(), n, "one self-loop slot per node");
        assert_eq!(incident.len(), n, "one incident slot per node");
        assert_eq!(adj_ids.len(), adj_ws.len(), "parallel adjacency arrays");
        let mut interner = AccountInterner::default();
        let mut adjacency = SortedRunStore::new();
        for (v, &acct) in accounts.iter().enumerate() {
            let node = interner.intern(acct);
            assert_eq!(node as usize, v, "checkpointed accounts must be unique");
            let (lo, hi) = (row_offsets[v], row_offsets[v + 1]);
            adjacency.push_row_from_sorted(&adj_ids[lo..hi], &adj_ws[lo..hi]);
        }
        Self {
            interner,
            adjacency,
            self_loops,
            incident,
            total_weight,
            edge_count,
            transaction_count,
            residency: None,
        }
    }

    fn ensure_node(&mut self, account: AccountId) -> NodeId {
        let n = self.interner.intern(account);
        if n as usize >= self.adjacency.rows() {
            self.adjacency.push_row();
            self.self_loops.push(0.0);
            self.incident.push(0.0);
            if let Some(res) = self.residency.as_deref_mut() {
                res.push_node();
            }
        }
        // Residency hook on the ingestion hot path: stamp the write touch
        // and rehydrate first if traffic returned to a cold account, so
        // the clique expansion below only ever writes resident rows. One
        // predictable branch when residency is off.
        if let Some(res) = self.residency.as_deref_mut() {
            res.touch(n);
            if res.is_cold(n) {
                res.rehydrate(&mut self.adjacency, n);
            }
        }
        n
    }

    /// Enables cold-row eviction (see [`crate::residency`]). Call once,
    /// before or after ingestion starts; existing rows count as touched
    /// now. [`TxGraph::advance_residency_epoch`] drives the window.
    pub fn enable_residency(&mut self, config: &ResidencyConfig) {
        assert!(self.residency.is_none(), "residency already enabled");
        self.residency = Some(Box::new(Residency::new(config, self.node_count())));
    }

    /// Whether cold-row eviction is active.
    pub fn residency_enabled(&self) -> bool {
        self.residency.is_some()
    }

    /// Marks an epoch boundary for the residency window, evicting rows of
    /// accounts untouched for more than the configured number of completed
    /// epochs. Returns the number of rows evicted. No-op when residency is
    /// disabled.
    pub fn advance_residency_epoch(&mut self) -> usize {
        match self.residency.as_deref_mut() {
            Some(res) => res.advance_epoch(&mut self.adjacency),
            None => 0,
        }
    }

    /// Rehydrates `v`'s row if it is cold (no-op otherwise, or when
    /// residency is disabled). Does not count as a write touch.
    pub fn ensure_resident(&mut self, v: NodeId) {
        if let Some(res) = self.residency.as_deref_mut() {
            res.rehydrate(&mut self.adjacency, v);
        }
    }

    /// Rehydrates every cold row — required before any whole-graph read
    /// (global re-solve, session rebuild, consistency audit, checkpoint,
    /// dust pruning); see the [residency read invariant](crate::residency).
    pub fn ensure_all_resident(&mut self) {
        if let Some(res) = self.residency.as_deref_mut() {
            for v in 0..res.node_count() as NodeId {
                res.rehydrate(&mut self.adjacency, v);
            }
        }
    }

    /// The current memory accounting of the graph (see
    /// [`MemoryFootprint`]).
    pub fn memory_footprint(&self) -> MemoryFootprint {
        let cold = self.residency.as_deref().map_or(0, |r| r.cold_rows());
        MemoryFootprint {
            slab_arena_bytes: self.adjacency.arena_bytes(),
            slab_live_entries: self.adjacency.live_entries(),
            node_scalar_bytes: (self.self_loops.capacity() + self.incident.capacity())
                * std::mem::size_of::<f64>(),
            interner_bytes: self.interner.approx_bytes(),
            residency_index_bytes: self.residency.as_deref().map_or(0, |r| r.index_bytes()),
            spill_bytes: self.residency.as_deref().map_or(0, |r| r.spill_bytes()),
            resident_rows: self.node_count() - cold,
            cold_rows: cold,
            evicted_rows: self.residency.as_deref().map_or(0, |r| r.evicted_total()),
            restored_rows: self.residency.as_deref().map_or(0, |r| r.restored_total()),
        }
    }

    /// Adds raw weight between two accounts (interning them as needed).
    /// `a == b` adds self-loop weight.
    pub fn add_weight(&mut self, a: AccountId, b: AccountId, w: f64) {
        let na = self.ensure_node(a);
        let nb = self.ensure_node(b);
        self.add_weight_nodes(na, nb, w);
    }

    /// [`TxGraph::add_weight`] over already-interned nodes — the ingestion
    /// hot path (one interner lookup per account per transaction, not one
    /// per clique pair).
    fn add_weight_nodes(&mut self, na: NodeId, nb: NodeId, w: f64) {
        debug_assert!(w > 0.0, "edge weights must be positive");
        self.total_weight += w;
        if na == nb {
            self.self_loops[na as usize] += w;
            self.incident[na as usize] += w;
            return;
        }
        if self.adjacency.add(na as usize, nb, w) {
            self.edge_count += 1;
        }
        self.adjacency.add(nb as usize, na, w);
        self.incident[na as usize] += w;
        self.incident[nb as usize] += w;
    }

    /// Subtracts self-loop weight from a node (sliding-window eviction).
    pub(crate) fn subtract_self_loop(&mut self, n: NodeId, w: f64) {
        let slot = &mut self.self_loops[n as usize];
        *slot = (*slot - w).max(0.0);
        self.incident[n as usize] = (self.incident[n as usize] - w).max(0.0);
        self.total_weight = (self.total_weight - w).max(0.0);
    }

    /// Decrements the ingested-transaction counter (used by
    /// [`TxGraph::remove_transaction`]).
    pub(crate) fn note_transaction_removed(&mut self) {
        self.transaction_count = self.transaction_count.saturating_sub(1);
    }

    /// Multiplies every stored weight by `factor` (decay support).
    ///
    /// Cold rows are not touched here: the factor is logged and replayed
    /// stepwise on rehydration, which produces the identical multiply
    /// sequence (and therefore identical bits) their resident twins got.
    pub(crate) fn scale_all_weights(&mut self, factor: f64) {
        if let Some(res) = self.residency.as_deref_mut() {
            res.on_scale(factor);
        }
        self.adjacency.scale_all(factor);
        for w in &mut self.self_loops {
            *w *= factor;
        }
        for w in &mut self.incident {
            *w *= factor;
        }
        self.total_weight *= factor;
    }

    /// Drops edges (and zeroes self-loops) lighter than `threshold`,
    /// updating all derived weights. Returns the number of edges dropped.
    pub(crate) fn drop_edges_below(&mut self, threshold: f64) -> usize {
        // Pruning reads and mutates every row symmetrically; a cold row
        // would silently desync from its resident partners.
        self.ensure_all_resident();
        let mut dropped = 0usize;
        let mut doomed: Vec<(NodeId, f64)> = Vec::new();
        for a in 0..self.adjacency.rows() {
            doomed.clear();
            self.adjacency.for_each(a, |b, w| {
                if (a as NodeId) < b && w < threshold {
                    doomed.push((b, w));
                }
            });
            for &(b, w) in &doomed {
                self.adjacency.remove(a, b);
                self.adjacency.remove(b as usize, a as NodeId);
                self.incident[a] = (self.incident[a] - w).max(0.0);
                self.incident[b as usize] = (self.incident[b as usize] - w).max(0.0);
                self.total_weight = (self.total_weight - w).max(0.0);
                self.edge_count -= 1;
                dropped += 1;
            }
        }
        for n in 0..self.self_loops.len() {
            let w = self.self_loops[n];
            if w > 0.0 && w < threshold {
                self.self_loops[n] = 0.0;
                self.incident[n] = (self.incident[n] - w).max(0.0);
                self.total_weight = (self.total_weight - w).max(0.0);
            }
        }
        dropped
    }

    /// Subtracts edge weight between two distinct nodes, dropping the edge
    /// when its weight reaches zero (up to float dust).
    pub(crate) fn subtract_edge(&mut self, a: NodeId, b: NodeId, w: f64) {
        // txallo-lint: allow(D2-eps-literal) — named, documented weight-dust floor for edge removal, not a tie-break tolerance; value pinned by the decay/unlearn golden tests
        const DUST: f64 = 1e-9;
        debug_assert_ne!(a, b, "use subtract_self_loop for loops");
        // Both endpoint rows must be resident: the subtraction is
        // symmetric and a cold side would rehydrate stale weights later.
        self.ensure_resident(a);
        self.ensure_resident(b);
        let mut drop_edge = false;
        if let Some(entry) = self.adjacency.get_mut(a as usize, b) {
            *entry -= w;
            if *entry <= DUST {
                drop_edge = true;
            }
        } else {
            debug_assert!(false, "subtracting a non-existent edge");
            return;
        }
        if let Some(entry) = self.adjacency.get_mut(b as usize, a) {
            *entry -= w;
        }
        if drop_edge {
            self.adjacency.remove(a as usize, b);
            self.adjacency.remove(b as usize, a);
            self.edge_count -= 1;
        }
        self.incident[a as usize] = (self.incident[a as usize] - w).max(0.0);
        self.incident[b as usize] = (self.incident[b as usize] - w).max(0.0);
        self.total_weight = (self.total_weight - w).max(0.0);
    }

    /// Distributes one transaction's unit weight over the clique expansion
    /// of its already-interned account set.
    fn ingest_interned(&mut self, nodes: &[NodeId]) {
        if nodes.len() == 1 {
            let n = nodes[0];
            self.self_loops[n as usize] += 1.0;
            self.incident[n as usize] += 1.0;
            self.total_weight += 1.0;
            return;
        }
        let w = 1.0 / (nodes.len() * (nodes.len() - 1) / 2) as f64;
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                self.add_weight_nodes(nodes[i], nodes[j], w);
            }
        }
    }

    /// Ingests a single transaction: distributes weight `1/π(Tx)` over its
    /// clique expansion and returns the touched node ids.
    pub fn ingest_transaction(&mut self, tx: &Transaction) -> Vec<NodeId> {
        self.transaction_count += 1;
        let set = tx.account_set();
        let mut touched = Vec::with_capacity(set.len());
        for &acct in &set {
            touched.push(self.ensure_node(acct));
        }
        self.ingest_interned(&touched);
        touched
    }

    /// Ingests every transaction of a block, returning the deduplicated set
    /// of touched nodes `V̂` — the working set of A-TxAllo.
    pub fn ingest_block(&mut self, block: &Block) -> Vec<NodeId> {
        self.ingest_block_nodes(block).into_touched()
    }

    /// [`TxGraph::ingest_block`] returning the full interned view: the
    /// deduplicated touched set *and* each transaction's dense node ids, so
    /// epoch consumers (session delta folds, the streaming touched set)
    /// reuse the interner work ingestion already paid instead of re-hashing
    /// every [`AccountId`] per epoch.
    pub fn ingest_block_nodes(&mut self, block: &Block) -> BlockNodes {
        let mut nodes = BlockNodes::default();
        nodes.tx_offsets.push(0);
        for tx in block.transactions() {
            self.transaction_count += 1;
            let set = tx.account_set();
            let start = nodes.tx_nodes.len();
            for &acct in &set {
                nodes.tx_nodes.push(self.ensure_node(acct));
            }
            nodes.tx_offsets.push(fit_u32(nodes.tx_nodes.len()));
            self.ingest_interned(&nodes.tx_nodes[start..]);
        }
        nodes.touched.extend_from_slice(&nodes.tx_nodes);
        nodes.touched.sort_unstable();
        nodes.touched.dedup();
        nodes
    }

    /// The account ↔ node mapping.
    pub fn interner(&self) -> &AccountInterner {
        &self.interner
    }

    /// The account behind a node id.
    pub fn account(&self, node: NodeId) -> AccountId {
        self.interner.account(node)
    }

    /// Node id of an account, if it has appeared in any transaction.
    pub fn node_of(&self, account: AccountId) -> Option<NodeId> {
        self.interner.get(account)
    }

    /// Number of distinct unordered edges (self-loops excluded).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of transactions ingested so far (`|T|`).
    pub fn transaction_count(&self) -> usize {
        self.transaction_count
    }

    /// Edge weight between two nodes (0 if absent); `a == b` returns the
    /// self-loop weight.
    pub fn weight_between(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return self.self_loops[a as usize];
        }
        self.adjacency.get(a as usize, b).unwrap_or(0.0)
    }

    /// Appends node `v`'s neighbors (ascending ids, weights parallel) to
    /// `out_ids`/`out_ws`, returning the row's weight sum folded in that
    /// same ascending order — the straight run copy the snapshot builders
    /// use.
    pub fn copy_row_into(
        &self,
        v: NodeId,
        out_ids: &mut Vec<NodeId>,
        out_ws: &mut Vec<f64>,
    ) -> f64 {
        self.adjacency.copy_row_into(v as usize, out_ids, out_ws)
    }

    /// Nodes sorted by the canonical account-hash order the paper prescribes
    /// for deterministic sweeps (§V-B).
    pub fn nodes_in_canonical_order(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.node_count() as NodeId).collect();
        nodes.sort_unstable_by_key(|&n| {
            let a = self.interner.account(n);
            (a.address_hash(), a.0)
        });
        nodes
    }
}

impl WeightedGraph for TxGraph {
    fn node_count(&self) -> usize {
        self.interner.len()
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn self_loop(&self, v: NodeId) -> f64 {
        self.self_loops[v as usize]
    }

    fn incident_weight(&self, v: NodeId) -> f64 {
        self.incident[v as usize]
    }

    /// Neighbors are reported in **ascending id order** (the sorted-run
    /// invariant), so order-dependent float folds over the mutable graph
    /// agree with the frozen CSR forms.
    fn for_each_neighbor(&self, v: NodeId, f: impl FnMut(NodeId, f64)) {
        self.adjacency.for_each(v as usize, f);
    }

    fn neighbor_count(&self, v: NodeId) -> usize {
        self.adjacency.row_len(v as usize)
    }

    fn row_view(&self, v: NodeId) -> Option<RowView<'_>> {
        let (run_ids, run_ws, tail_ids, tail_ws) = self.adjacency.row_parts(v as usize);
        Some(RowView {
            run_ids,
            run_ws,
            tail_ids,
            tail_ws,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> AccountId {
        AccountId(v)
    }

    #[test]
    fn transfer_creates_unit_edge() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let (n1, n2) = (g.node_of(a(1)).unwrap(), g.node_of(a(2)).unwrap());
        assert!((g.weight_between(n1, n2) - 1.0).abs() < 1e-12);
        assert!((g.total_weight() - 1.0).abs() < 1e-12);
        assert!((g.incident_weight(n1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_transfers_accumulate() {
        let mut g = TxGraph::new();
        for _ in 0..5 {
            g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        }
        let (n1, n2) = (g.node_of(a(1)).unwrap(), g.node_of(a(2)).unwrap());
        assert!((g.weight_between(n1, n2) - 5.0).abs() < 1e-12);
        assert_eq!(g.edge_count(), 1, "parallel edges merge");
        assert_eq!(g.transaction_count(), 5);
    }

    #[test]
    fn self_loop_accounting() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(9), a(9)));
        let n = g.node_of(a(9)).unwrap();
        assert!((g.self_loop(n) - 1.0).abs() < 1e-12);
        assert!((g.incident_weight(n) - 1.0).abs() < 1e-12);
        assert!(
            (g.strength(n) - 2.0).abs() < 1e-12,
            "strength counts loop twice"
        );
        assert_eq!(g.neighbor_count(n), 0);
        assert!((g.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_io_distributes_unit_weight() {
        let mut g = TxGraph::new();
        let tx = Transaction::new(vec![a(1), a(2)], vec![a(3)]).unwrap();
        g.ingest_transaction(&tx);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!((g.total_weight() - 1.0).abs() < 1e-9);
        let n1 = g.node_of(a(1)).unwrap();
        let n2 = g.node_of(a(2)).unwrap();
        assert!((g.weight_between(n1, n2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn total_weight_equals_transaction_count() {
        // Each transaction contributes exactly 1 regardless of arity.
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        g.ingest_transaction(&Transaction::new(vec![a(1)], vec![a(2), a(3), a(4)]).unwrap());
        g.ingest_transaction(&Transaction::transfer(a(5), a(5)));
        assert!((g.total_weight() - 3.0).abs() < 1e-9);
        assert_eq!(g.transaction_count(), 3);
    }

    #[test]
    fn ingest_block_reports_touched_nodes() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(a(2), a(3)),
                Transaction::transfer(a(4), a(5)),
            ],
        );
        let touched = g.ingest_block(&block);
        let accounts: Vec<u64> = touched.iter().map(|&n| g.account(n).0).collect();
        assert_eq!(accounts.len(), 4);
        for acct in [2, 3, 4, 5] {
            assert!(accounts.contains(&acct));
        }
    }

    #[test]
    fn block_nodes_carry_per_transaction_interning() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(a(2), a(3)),
                Transaction::transfer(a(7), a(7)),
                Transaction::new(vec![a(1)], vec![a(4), a(5)]).unwrap(),
            ],
        );
        let nodes = g.ingest_block_nodes(&block);
        assert_eq!(nodes.tx_count(), 3);
        // Per-tx sets mirror account_set() through the interner.
        for (i, tx) in block.transactions().iter().enumerate() {
            let expect: Vec<NodeId> = tx
                .account_set()
                .iter()
                .map(|&acct| g.node_of(acct).unwrap())
                .collect();
            assert_eq!(nodes.tx_nodes(i), expect.as_slice(), "tx {i}");
        }
        // Touched = sorted dedup of all per-tx sets.
        let mut expect: Vec<NodeId> = (0..nodes.tx_count())
            .flat_map(|i| nodes.tx_nodes(i).to_vec())
            .collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(nodes.touched(), expect.as_slice());
        // And matches what ingest_block reports on an identical twin.
        let mut twin = TxGraph::new();
        twin.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        assert_eq!(twin.ingest_block(&block), nodes.touched());
    }

    #[test]
    fn neighbors_iterate_ascending_always() {
        // Adversarial insertion order (descending, interleaved, repeated):
        // the sorted-run invariant must hold after every transaction.
        let mut g = TxGraph::new();
        let partners: Vec<u64> = (0..60).map(|i| (997 * (i + 1)) % 61).collect();
        for &p in &partners {
            g.ingest_transaction(&Transaction::transfer(a(0), a(p + 1)));
            let n0 = g.node_of(a(0)).unwrap();
            let mut prev = None;
            g.for_each_neighbor(n0, |u, _| {
                assert!(prev.is_none_or(|p| p < u), "ascending after each ingest");
                prev = Some(u);
            });
        }
        let n0 = g.node_of(a(0)).unwrap();
        assert_eq!(g.neighbor_count(n0), {
            let mut d: Vec<u64> = partners.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        });
    }

    #[test]
    fn self_transfers_and_repeated_pairs_degenerate_cases() {
        // The satellite's degenerate coverage: a node whose entire history
        // is self-transfers plus one pair accumulating many repeats.
        let mut g = TxGraph::new();
        for _ in 0..50 {
            g.ingest_transaction(&Transaction::transfer(a(5), a(5)));
        }
        for _ in 0..50 {
            g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        }
        let n5 = g.node_of(a(5)).unwrap();
        assert_eq!(g.neighbor_count(n5), 0, "self-transfers create no edges");
        assert_eq!(g.self_loop(n5), 50.0);
        assert_eq!(g.incident_weight(n5), 50.0);
        let (n1, n2) = (g.node_of(a(1)).unwrap(), g.node_of(a(2)).unwrap());
        assert_eq!(g.weight_between(n1, n2), 50.0, "exact unit accumulation");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.transaction_count(), 100);
        // Both directions stored symmetrically.
        assert_eq!(g.weight_between(n2, n1), 50.0);
    }

    #[test]
    fn canonical_order_is_a_permutation_and_stable() {
        let mut g = TxGraph::new();
        for i in 0..50u64 {
            g.ingest_transaction(&Transaction::transfer(a(i), a(i + 1)));
        }
        let order = g.nodes_in_canonical_order();
        assert_eq!(order.len(), g.node_count());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.node_count() as NodeId).collect::<Vec<_>>());
        assert_eq!(order, g.nodes_in_canonical_order());
    }

    #[test]
    fn incident_weight_matches_neighbor_sum() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::new(vec![a(1), a(2)], vec![a(3), a(4)]).unwrap());
        g.ingest_transaction(&Transaction::transfer(a(1), a(1)));
        g.ingest_transaction(&Transaction::transfer(a(1), a(3)));
        for v in 0..g.node_count() as NodeId {
            let mut sum = g.self_loop(v);
            g.for_each_neighbor(v, |_, w| sum += w);
            assert!(
                (sum - g.incident_weight(v)).abs() < 1e-9,
                "incident weight cache out of sync for node {v}"
            );
        }
    }

    #[test]
    fn checkpoint_parts_round_trip_bitwise_and_keep_ingesting() {
        // Build a messy graph, dismantle it into checkpoint parts, rebuild,
        // and require the restored twin to be bitwise-indistinguishable —
        // including for *future* ingestion, which is the property resume
        // correctness rides on.
        let mut g = TxGraph::new();
        for i in 0..30u64 {
            g.ingest_transaction(&Transaction::transfer(a(i % 7), a((i * 5) % 11)));
            g.ingest_transaction(&Transaction::new(vec![a(i)], vec![a(i + 1), a(2)]).unwrap());
        }
        g.apply_decay(0.75);
        g.ingest_transaction(&Transaction::transfer(a(3), a(3)));

        let n = g.node_count();
        let accounts = g.interner().accounts().to_vec();
        let mut offsets = vec![0usize];
        let (mut ids, mut ws) = (Vec::new(), Vec::new());
        for v in 0..n as NodeId {
            g.copy_row_into(v, &mut ids, &mut ws);
            offsets.push(ids.len());
        }
        let self_loops: Vec<f64> = (0..n as NodeId).map(|v| g.self_loop(v)).collect();
        let incident: Vec<f64> = (0..n as NodeId).map(|v| g.incident_weight(v)).collect();
        let mut r = TxGraph::from_checkpoint_parts(
            &accounts,
            &offsets,
            &ids,
            &ws,
            self_loops,
            incident,
            g.total_weight(),
            g.edge_count(),
            g.transaction_count(),
        );

        let same = |x: &TxGraph, y: &TxGraph| {
            assert_eq!(x.node_count(), y.node_count());
            assert_eq!(x.edge_count(), y.edge_count());
            assert_eq!(x.transaction_count(), y.transaction_count());
            assert_eq!(x.total_weight().to_bits(), y.total_weight().to_bits());
            for v in 0..x.node_count() as NodeId {
                assert_eq!(x.account(v), y.account(v));
                assert_eq!(x.self_loop(v).to_bits(), y.self_loop(v).to_bits());
                assert_eq!(
                    x.incident_weight(v).to_bits(),
                    y.incident_weight(v).to_bits()
                );
                let mut xr = Vec::new();
                let mut yr = Vec::new();
                x.for_each_neighbor(v, |u, w| xr.push((u, w.to_bits())));
                y.for_each_neighbor(v, |u, w| yr.push((u, w.to_bits())));
                assert_eq!(xr, yr, "row {v}");
            }
            assert_eq!(x.nodes_in_canonical_order(), y.nodes_in_canonical_order());
        };
        same(&g, &r);

        // The futures coincide too: new accounts, repeats, decay.
        let block = Block::new(
            9,
            vec![
                Transaction::transfer(a(100), a(3)),
                Transaction::transfer(a(0), a(1)),
                Transaction::new(vec![a(101)], vec![a(102), a(0)]).unwrap(),
            ],
        );
        assert_eq!(g.ingest_block(&block), r.ingest_block(&block));
        g.apply_decay(0.5);
        r.apply_decay(0.5);
        same(&g, &r);
    }

    #[test]
    fn residency_eviction_is_bitwise_transparent_through_decay() {
        use crate::residency::ResidencyConfig;
        // Two graphs fed identical epochs; one evicts with a 1-epoch
        // window and in-memory spill. After rehydrating everything, every
        // row, scalar and total must match bitwise — including rows that
        // sat cold through several decay epochs.
        let mut plain = TxGraph::new();
        let mut evicting = TxGraph::new();
        evicting.enable_residency(&ResidencyConfig::in_memory(1));

        let epoch_txs = |e: u64| -> Vec<Transaction> {
            // Three disjoint traffic pockets that go hot and cold: pocket
            // `e % 3` is active this epoch, everything else idles.
            let base = (e % 3) * 10;
            (0..12)
                .map(|i| Transaction::transfer(a(base + i % 5), a(base + (i * 3) % 7)))
                .collect()
        };
        for e in 0..12u64 {
            let block = Block::new(e, epoch_txs(e));
            plain.apply_decay(0.9);
            evicting.apply_decay(0.9);
            assert_eq!(plain.ingest_block(&block), evicting.ingest_block(&block));
            let evicted = evicting.advance_residency_epoch();
            if e >= 3 {
                // By now at least one pocket has idled past the window.
                let fp = evicting.memory_footprint();
                assert!(fp.cold_rows > 0 || evicted == 0 || fp.restored_rows > 0);
            }
        }
        assert!(
            evicting.memory_footprint().evicted_rows > 0,
            "the eviction window must have fired"
        );

        evicting.ensure_all_resident();
        assert_eq!(evicting.memory_footprint().cold_rows, 0);
        assert_eq!(plain.node_count(), evicting.node_count());
        assert_eq!(plain.edge_count(), evicting.edge_count());
        assert_eq!(
            plain.total_weight().to_bits(),
            evicting.total_weight().to_bits()
        );
        for v in 0..plain.node_count() as NodeId {
            assert_eq!(
                plain.self_loop(v).to_bits(),
                evicting.self_loop(v).to_bits()
            );
            assert_eq!(
                plain.incident_weight(v).to_bits(),
                evicting.incident_weight(v).to_bits()
            );
            let mut pr = Vec::new();
            let mut er = Vec::new();
            plain.for_each_neighbor(v, |u, w| pr.push((u, w.to_bits())));
            evicting.for_each_neighbor(v, |u, w| er.push((u, w.to_bits())));
            assert_eq!(pr, er, "row {v}");
        }
    }

    #[test]
    fn memory_footprint_reports_the_slab() {
        let mut g = TxGraph::new();
        for i in 0..50u64 {
            g.ingest_transaction(&Transaction::transfer(a(i), a(i + 1)));
        }
        let fp = g.memory_footprint();
        assert_eq!(fp.resident_rows, g.node_count());
        assert_eq!(fp.cold_rows, 0);
        assert!(fp.slab_live_entries >= 100, "two entries per edge");
        assert!(fp.slab_arena_bytes >= fp.slab_live_bytes());
        assert!(fp.interner_bytes > 0);
        assert!(fp.resident_bytes() > 0);
        assert_eq!(fp.spill_bytes, 0);
    }

    #[test]
    fn row_view_merges_to_the_full_row() {
        let mut g = TxGraph::new();
        for i in 0..40u64 {
            g.ingest_transaction(&Transaction::transfer(a(0), a((i * 7) % 41 + 1)));
        }
        let n0 = g.node_of(a(0)).unwrap();
        let view = g.row_view(n0).expect("TxGraph always exposes rows");
        assert!(view.run_ids.windows(2).all(|p| p[0] < p[1]));
        assert!(view.tail_ids.windows(2).all(|p| p[0] < p[1]));
        let mut merged: Vec<(NodeId, f64)> = view
            .run_ids
            .iter()
            .copied()
            .zip(view.run_ws.iter().copied())
            .chain(
                view.tail_ids
                    .iter()
                    .copied()
                    .zip(view.tail_ws.iter().copied()),
            )
            .collect();
        merged.sort_unstable_by_key(|&(u, _)| u);
        let mut reported = Vec::new();
        g.for_each_neighbor(n0, |u, w| reported.push((u, w)));
        assert_eq!(merged, reported);
    }
}
