//! The incremental transaction graph.

use txallo_model::{AccountId, Block, FxHashMap, FxHashSet, Ledger, Transaction};

use crate::interner::AccountInterner;
use crate::traits::{NodeId, WeightedGraph};

/// Weighted undirected transaction graph (Definition 2) with incremental
/// ingestion.
///
/// ```
/// use txallo_graph::{TxGraph, WeightedGraph};
/// use txallo_model::{AccountId, Transaction};
///
/// let mut g = TxGraph::new();
/// g.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
/// g.ingest_transaction(&Transaction::transfer(AccountId(2), AccountId(3)));
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.total_weight(), 2.0); // one unit of weight per transaction
/// ```
///
/// Per-node adjacency is a hash map keyed by neighbor id so that repeated
/// transactions between the same pair accumulate weight in `O(1)`; per-node
/// scalars (`incident weight`, self-loop) are flat vectors, following the
/// perf-book advice to keep hot per-node state unboxed and index-addressed.
#[derive(Debug, Clone, Default)]
pub struct TxGraph {
    interner: AccountInterner,
    adjacency: Vec<FxHashMap<NodeId, f64>>,
    self_loops: Vec<f64>,
    incident: Vec<f64>,
    total_weight: f64,
    edge_count: usize,
    transaction_count: usize,
}

impl TxGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the graph of an entire ledger.
    pub fn from_ledger(ledger: &Ledger) -> Self {
        let mut g = Self::new();
        for block in ledger.blocks() {
            for tx in block.transactions() {
                g.ingest_transaction(tx);
            }
        }
        g
    }

    /// Builds the graph from a flat transaction slice.
    pub fn from_transactions<'a>(txs: impl IntoIterator<Item = &'a Transaction>) -> Self {
        let mut g = Self::new();
        for tx in txs {
            g.ingest_transaction(tx);
        }
        g
    }

    fn ensure_node(&mut self, account: AccountId) -> NodeId {
        let n = self.interner.intern(account);
        if n as usize >= self.adjacency.len() {
            self.adjacency.push(FxHashMap::default());
            self.self_loops.push(0.0);
            self.incident.push(0.0);
        }
        n
    }

    /// Adds raw weight between two accounts (interning them as needed).
    /// `a == b` adds self-loop weight.
    pub fn add_weight(&mut self, a: AccountId, b: AccountId, w: f64) {
        debug_assert!(w > 0.0, "edge weights must be positive");
        let na = self.ensure_node(a);
        let nb = self.ensure_node(b);
        self.total_weight += w;
        if na == nb {
            self.self_loops[na as usize] += w;
            self.incident[na as usize] += w;
            return;
        }
        use std::collections::hash_map::Entry;
        match self.adjacency[na as usize].entry(nb) {
            Entry::Occupied(mut o) => *o.get_mut() += w,
            Entry::Vacant(slot) => {
                slot.insert(w);
                self.edge_count += 1;
            }
        }
        *self.adjacency[nb as usize].entry(na).or_insert(0.0) += w;
        self.incident[na as usize] += w;
        self.incident[nb as usize] += w;
    }

    /// Subtracts self-loop weight from a node (sliding-window eviction).
    pub(crate) fn subtract_self_loop(&mut self, n: NodeId, w: f64) {
        let slot = &mut self.self_loops[n as usize];
        *slot = (*slot - w).max(0.0);
        self.incident[n as usize] = (self.incident[n as usize] - w).max(0.0);
        self.total_weight = (self.total_weight - w).max(0.0);
    }

    /// Decrements the ingested-transaction counter (used by
    /// [`TxGraph::remove_transaction`]).
    pub(crate) fn note_transaction_removed(&mut self) {
        self.transaction_count = self.transaction_count.saturating_sub(1);
    }

    /// Multiplies every stored weight by `factor` (decay support).
    pub(crate) fn scale_all_weights(&mut self, factor: f64) {
        for adj in &mut self.adjacency {
            for w in adj.values_mut() {
                *w *= factor;
            }
        }
        for w in &mut self.self_loops {
            *w *= factor;
        }
        for w in &mut self.incident {
            *w *= factor;
        }
        self.total_weight *= factor;
    }

    /// Drops edges (and zeroes self-loops) lighter than `threshold`,
    /// updating all derived weights. Returns the number of edges dropped.
    pub(crate) fn drop_edges_below(&mut self, threshold: f64) -> usize {
        let mut dropped = 0usize;
        for a in 0..self.adjacency.len() {
            let doomed: Vec<(NodeId, f64)> = self.adjacency[a]
                .iter()
                .filter(|&(&b, &w)| (a as NodeId) < b && w < threshold)
                .map(|(&b, &w)| (b, w))
                .collect();
            for (b, w) in doomed {
                self.adjacency[a].remove(&b);
                self.adjacency[b as usize].remove(&(a as NodeId));
                self.incident[a] = (self.incident[a] - w).max(0.0);
                self.incident[b as usize] = (self.incident[b as usize] - w).max(0.0);
                self.total_weight = (self.total_weight - w).max(0.0);
                self.edge_count -= 1;
                dropped += 1;
            }
        }
        for n in 0..self.self_loops.len() {
            let w = self.self_loops[n];
            if w > 0.0 && w < threshold {
                self.self_loops[n] = 0.0;
                self.incident[n] = (self.incident[n] - w).max(0.0);
                self.total_weight = (self.total_weight - w).max(0.0);
            }
        }
        dropped
    }

    /// Subtracts edge weight between two distinct nodes, dropping the edge
    /// when its weight reaches zero (up to float dust).
    pub(crate) fn subtract_edge(&mut self, a: NodeId, b: NodeId, w: f64) {
        const DUST: f64 = 1e-9;
        debug_assert_ne!(a, b, "use subtract_self_loop for loops");
        let mut drop_edge = false;
        if let Some(entry) = self.adjacency[a as usize].get_mut(&b) {
            *entry -= w;
            if *entry <= DUST {
                drop_edge = true;
            }
        } else {
            debug_assert!(false, "subtracting a non-existent edge");
            return;
        }
        if let Some(entry) = self.adjacency[b as usize].get_mut(&a) {
            *entry -= w;
        }
        if drop_edge {
            self.adjacency[a as usize].remove(&b);
            self.adjacency[b as usize].remove(&a);
            self.edge_count -= 1;
        }
        self.incident[a as usize] = (self.incident[a as usize] - w).max(0.0);
        self.incident[b as usize] = (self.incident[b as usize] - w).max(0.0);
        self.total_weight = (self.total_weight - w).max(0.0);
    }

    /// Ingests a single transaction: distributes weight `1/π(Tx)` over its
    /// clique expansion and returns the touched node ids.
    pub fn ingest_transaction(&mut self, tx: &Transaction) -> Vec<NodeId> {
        self.transaction_count += 1;
        let set = tx.account_set();
        let mut touched = Vec::with_capacity(set.len());
        if set.len() == 1 {
            let n = self.ensure_node(set[0]);
            self.self_loops[n as usize] += 1.0;
            self.incident[n as usize] += 1.0;
            self.total_weight += 1.0;
            touched.push(n);
            return touched;
        }
        let w = 1.0 / (set.len() * (set.len() - 1) / 2) as f64;
        for &acct in &set {
            touched.push(self.ensure_node(acct));
        }
        for i in 0..set.len() {
            for j in (i + 1)..set.len() {
                self.add_weight(set[i], set[j], w);
            }
        }
        touched
    }

    /// Ingests every transaction of a block, returning the deduplicated set
    /// of touched nodes `V̂` — the working set of A-TxAllo.
    pub fn ingest_block(&mut self, block: &Block) -> Vec<NodeId> {
        let mut touched: FxHashSet<NodeId> = FxHashSet::default();
        for tx in block.transactions() {
            for n in self.ingest_transaction(tx) {
                touched.insert(n);
            }
        }
        let mut v: Vec<NodeId> = touched.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// The account ↔ node mapping.
    pub fn interner(&self) -> &AccountInterner {
        &self.interner
    }

    /// The account behind a node id.
    pub fn account(&self, node: NodeId) -> AccountId {
        self.interner.account(node)
    }

    /// Node id of an account, if it has appeared in any transaction.
    pub fn node_of(&self, account: AccountId) -> Option<NodeId> {
        self.interner.get(account)
    }

    /// Number of distinct unordered edges (self-loops excluded).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of transactions ingested so far (`|T|`).
    pub fn transaction_count(&self) -> usize {
        self.transaction_count
    }

    /// Edge weight between two nodes (0 if absent); `a == b` returns the
    /// self-loop weight.
    pub fn weight_between(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return self.self_loops[a as usize];
        }
        self.adjacency[a as usize].get(&b).copied().unwrap_or(0.0)
    }

    /// Nodes sorted by the canonical account-hash order the paper prescribes
    /// for deterministic sweeps (§V-B).
    pub fn nodes_in_canonical_order(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.node_count() as NodeId).collect();
        nodes.sort_unstable_by_key(|&n| {
            let a = self.interner.account(n);
            (a.address_hash(), a.0)
        });
        nodes
    }
}

impl WeightedGraph for TxGraph {
    fn node_count(&self) -> usize {
        self.interner.len()
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn self_loop(&self, v: NodeId) -> f64 {
        self.self_loops[v as usize]
    }

    fn incident_weight(&self, v: NodeId) -> f64 {
        self.incident[v as usize]
    }

    fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId, f64)) {
        for (&u, &w) in &self.adjacency[v as usize] {
            f(u, w);
        }
    }

    fn neighbor_count(&self, v: NodeId) -> usize {
        self.adjacency[v as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> AccountId {
        AccountId(v)
    }

    #[test]
    fn transfer_creates_unit_edge() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        let (n1, n2) = (g.node_of(a(1)).unwrap(), g.node_of(a(2)).unwrap());
        assert!((g.weight_between(n1, n2) - 1.0).abs() < 1e-12);
        assert!((g.total_weight() - 1.0).abs() < 1e-12);
        assert!((g.incident_weight(n1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_transfers_accumulate() {
        let mut g = TxGraph::new();
        for _ in 0..5 {
            g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        }
        let (n1, n2) = (g.node_of(a(1)).unwrap(), g.node_of(a(2)).unwrap());
        assert!((g.weight_between(n1, n2) - 5.0).abs() < 1e-12);
        assert_eq!(g.edge_count(), 1, "parallel edges merge");
        assert_eq!(g.transaction_count(), 5);
    }

    #[test]
    fn self_loop_accounting() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(9), a(9)));
        let n = g.node_of(a(9)).unwrap();
        assert!((g.self_loop(n) - 1.0).abs() < 1e-12);
        assert!((g.incident_weight(n) - 1.0).abs() < 1e-12);
        assert!(
            (g.strength(n) - 2.0).abs() < 1e-12,
            "strength counts loop twice"
        );
        assert_eq!(g.neighbor_count(n), 0);
        assert!((g.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_io_distributes_unit_weight() {
        let mut g = TxGraph::new();
        let tx = Transaction::new(vec![a(1), a(2)], vec![a(3)]).unwrap();
        g.ingest_transaction(&tx);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!((g.total_weight() - 1.0).abs() < 1e-9);
        let n1 = g.node_of(a(1)).unwrap();
        let n2 = g.node_of(a(2)).unwrap();
        assert!((g.weight_between(n1, n2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn total_weight_equals_transaction_count() {
        // Each transaction contributes exactly 1 regardless of arity.
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        g.ingest_transaction(&Transaction::new(vec![a(1)], vec![a(2), a(3), a(4)]).unwrap());
        g.ingest_transaction(&Transaction::transfer(a(5), a(5)));
        assert!((g.total_weight() - 3.0).abs() < 1e-9);
        assert_eq!(g.transaction_count(), 3);
    }

    #[test]
    fn ingest_block_reports_touched_nodes() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(a(1), a(2)));
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(a(2), a(3)),
                Transaction::transfer(a(4), a(5)),
            ],
        );
        let touched = g.ingest_block(&block);
        let accounts: Vec<u64> = touched.iter().map(|&n| g.account(n).0).collect();
        assert_eq!(accounts.len(), 4);
        for acct in [2, 3, 4, 5] {
            assert!(accounts.contains(&acct));
        }
    }

    #[test]
    fn canonical_order_is_a_permutation_and_stable() {
        let mut g = TxGraph::new();
        for i in 0..50u64 {
            g.ingest_transaction(&Transaction::transfer(a(i), a(i + 1)));
        }
        let order = g.nodes_in_canonical_order();
        assert_eq!(order.len(), g.node_count());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.node_count() as NodeId).collect::<Vec<_>>());
        assert_eq!(order, g.nodes_in_canonical_order());
    }

    #[test]
    fn incident_weight_matches_neighbor_sum() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::new(vec![a(1), a(2)], vec![a(3), a(4)]).unwrap());
        g.ingest_transaction(&Transaction::transfer(a(1), a(1)));
        g.ingest_transaction(&Transaction::transfer(a(1), a(3)));
        for v in 0..g.node_count() as NodeId {
            let mut sum = g.self_loop(v);
            g.for_each_neighbor(v, |_, w| sum += w);
            assert!(
                (sum - g.incident_weight(v)).abs() < 1e-9,
                "incident weight cache out of sync for node {v}"
            );
        }
    }
}
