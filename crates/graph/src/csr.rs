//! Compressed sparse row (CSR) weighted graph — the flat, immutable form
//! every repeated-sweep algorithm in this workspace runs on.
//!
//! ## Why CSR
//!
//! The sweep loops (Louvain local moving, the TxAllo optimization phases,
//! METIS refinement) visit every node's neighbor list thousands of times.
//! A nested `Vec<Vec<(NodeId, f64)>>` adjacency puts each list behind its
//! own heap allocation: one pointer chase and a likely cache miss per node,
//! plus allocator traffic when building levels. CSR packs the whole graph
//! into three flat arrays —
//!
//! ```text
//! offsets:   [0, 2, 5, …]           (n + 1 entries; row v = offsets[v]..offsets[v+1])
//! targets:   [1, 4, 0, 2, 9, …]     (neighbor ids, sorted ascending within a row)
//! weights:   [w, w, w, w, w, …]     (parallel to targets)
//! ```
//!
//! — so a sweep is one linear walk with perfect spatial locality, and a
//! neighbor lookup is a binary search over a contiguous row. Production
//! partitioners (METIS itself, and state-keeper batching in rollup
//! sequencers) use exactly this layout for the same reason.
//!
//! Rows are sorted and duplicate-merged at construction, which is also what
//! makes candidate enumeration deterministic: iterating a row yields
//! neighbors in ascending id order, so any per-community accumulation that
//! follows row order is reproducible bit-for-bit.

use crate::traits::{NodeId, WeightedGraph};

/// Immutable CSR weighted graph with per-node cached scalars.
///
/// Built once (from an edge list or any [`WeightedGraph`] snapshot), then
/// swept many times. Self-loops are stored out-of-band in a per-node array
/// — the sweep algebra (Eq. 6–8 of the paper) treats them separately from
/// proper edges, so keeping them out of the rows makes every row iteration
/// loop-free.
///
/// ```
/// use txallo_graph::{CsrGraph, WeightedGraph};
///
/// // Duplicate edges merge; both orientations accumulate on one row pair.
/// let g = CsrGraph::from_edges(3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 0.5)]);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbor_ids(1), &[0, 2]); // ascending, deterministic
/// assert_eq!(g.weight_between(0, 1), 3.0);
/// assert_eq!(g.incident_weight(1), 3.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// Row boundaries; `offsets[v]..offsets[v + 1]` indexes `targets`/`weights`.
    offsets: Vec<u32>,
    /// Neighbor ids, ascending within each row, duplicates merged.
    targets: Vec<NodeId>,
    /// Edge weights, parallel to `targets`.
    weights: Vec<f64>,
    /// Self-loop weight per node.
    self_loops: Vec<f64>,
    /// Cached incident weight per node (self-loop counted once).
    incident: Vec<f64>,
    total_weight: f64,
}

impl CsrGraph {
    /// Builds from an edge list. `edges` may contain duplicates and both
    /// orientations; weights accumulate. `(v, v, w)` entries accumulate
    /// into the self-loop of `v`.
    pub fn from_edges(
        node_count: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> Self {
        let mut self_loops = vec![0.0f64; node_count];
        let mut total = 0.0f64;
        // Pass 0: materialize non-loop edges once (the iterator may be lazy)
        // while folding loops and the total straight into their arrays.
        let mut flat: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for (a, b, w) in edges {
            debug_assert!(
                (a as usize) < node_count && (b as usize) < node_count,
                "edge ({a}, {b}) out of range for {node_count} nodes"
            );
            total += w;
            if a == b {
                self_loops[a as usize] += w;
            } else {
                flat.push((a, b, w));
            }
        }

        // Pass 1: row sizes (each non-loop edge lands in both rows).
        let mut offsets = vec![0u32; node_count + 1];
        for &(a, b, _) in &flat {
            offsets[a as usize + 1] += 1;
            offsets[b as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }

        // Pass 2: scatter into rows (unsorted, duplicates still present).
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut targets = vec![0 as NodeId; flat.len() * 2];
        let mut weights = vec![0.0f64; flat.len() * 2];
        for &(a, b, w) in &flat {
            let ia = cursor[a as usize] as usize;
            targets[ia] = b;
            weights[ia] = w;
            cursor[a as usize] += 1;
            let ib = cursor[b as usize] as usize;
            targets[ib] = a;
            weights[ib] = w;
            cursor[b as usize] += 1;
        }
        drop(flat);

        // Pass 3: sort each row and merge duplicate targets in place,
        // compacting rows toward the front of the arrays.
        let mut incident = vec![0.0f64; node_count];
        let mut write = 0usize;
        let mut row: Vec<(NodeId, f64)> = Vec::new();
        let mut compact_offsets = vec![0u32; node_count + 1];
        for v in 0..node_count {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            row.clear();
            row.extend(
                targets[start..end]
                    .iter()
                    .copied()
                    .zip(weights[start..end].iter().copied()),
            );
            row.sort_unstable_by_key(|&(u, _)| u);
            let row_start = write;
            for &(u, w) in &row {
                if write > row_start && targets[write - 1] == u {
                    weights[write - 1] += w;
                } else {
                    targets[write] = u;
                    weights[write] = w;
                    write += 1;
                }
            }
            incident[v] = self_loops[v] + weights[row_start..write].iter().sum::<f64>();
            compact_offsets[v + 1] = write as u32;
        }
        targets.truncate(write);
        weights.truncate(write);
        targets.shrink_to_fit();
        weights.shrink_to_fit();

        Self {
            offsets: compact_offsets,
            targets,
            weights,
            self_loops,
            incident,
            total_weight: total,
        }
    }

    /// Snapshots any [`WeightedGraph`] into CSR form (used to freeze the
    /// mutable `TxGraph` before the repeated sweeps of G-TxAllo and METIS).
    pub fn from_graph(g: &impl WeightedGraph) -> Self {
        Self::snapshot(g, |v| v)
    }

    /// Like [`CsrGraph::from_graph`] but with node ids remapped through
    /// `new_id` (a bijection onto `0..node_count`). Used to renumber a
    /// graph into canonical sweep order so that the sweeps walk rows
    /// sequentially.
    pub fn from_graph_relabeled(g: &impl WeightedGraph, new_id: &[NodeId]) -> Self {
        assert_eq!(new_id.len(), g.node_count(), "one new id per node");
        Self::snapshot(g, |v| new_id[v as usize])
    }

    /// Shared edge-extraction policy behind the snapshot constructors:
    /// positive self-loops, each unordered edge once (`v < u` in the
    /// *source* id space), endpoints mapped through `map`.
    fn snapshot(g: &impl WeightedGraph, map: impl Fn(NodeId) -> NodeId) -> Self {
        let n = g.node_count();
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for v in 0..n as NodeId {
            let loop_w = g.self_loop(v);
            if loop_w > 0.0 {
                edges.push((map(v), map(v), loop_w));
            }
            g.for_each_neighbor(v, |u, w| {
                if v < u {
                    edges.push((map(v), map(u), w));
                }
            });
        }
        Self::from_edges(n, edges)
    }

    /// Number of distinct unordered non-loop edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// The sorted neighbor ids of `v`.
    #[inline]
    pub fn neighbor_ids(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = self.row(v);
        &self.targets[s..e]
    }

    /// The edge weights of `v`, parallel to [`CsrGraph::neighbor_ids`].
    #[inline]
    pub fn neighbor_weights(&self, v: NodeId) -> &[f64] {
        let (s, e) = self.row(v);
        &self.weights[s..e]
    }

    /// `(neighbor, weight)` pairs of `v` in ascending neighbor order.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.neighbor_ids(v)
            .iter()
            .copied()
            .zip(self.neighbor_weights(v).iter().copied())
    }

    /// Edge weight between `a` and `b` (self-loop when equal), 0 if absent.
    pub fn weight_between(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return self.self_loops[a as usize];
        }
        let ids = self.neighbor_ids(a);
        match ids.binary_search(&b) {
            Ok(i) => self.neighbor_weights(a)[i],
            Err(_) => 0.0,
        }
    }

    #[inline]
    fn row(&self, v: NodeId) -> (usize, usize) {
        (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        )
    }
}

impl WeightedGraph for CsrGraph {
    fn node_count(&self) -> usize {
        self.self_loops.len()
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn self_loop(&self, v: NodeId) -> f64 {
        self.self_loops[v as usize]
    }

    fn incident_weight(&self, v: NodeId) -> f64 {
        self.incident[v as usize]
    }

    #[inline]
    fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId, f64)) {
        let (s, e) = self.row(v);
        for i in s..e {
            f(self.targets[i], self.weights[i]);
        }
    }

    fn neighbor_count(&self, v: NodeId) -> usize {
        let (s, e) = self.row(v);
        e - s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_merges_duplicates() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 0.5), (0, 0, 0.25)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!((g.weight_between(0, 1) - 3.0).abs() < 1e-12);
        assert!((g.weight_between(1, 0) - 3.0).abs() < 1e-12);
        assert!((g.self_loop(0) - 0.25).abs() < 1e-12);
        assert!((g.total_weight() - 3.75).abs() < 1e-12);
        assert!((g.incident_weight(0) - 3.25).abs() < 1e-12);
        assert!((g.incident_weight(1) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn rows_are_sorted_and_parallel() {
        let g = CsrGraph::from_edges(4, vec![(0, 3, 3.0), (0, 1, 1.0), (0, 2, 2.0)]);
        assert_eq!(g.neighbor_ids(0), &[1, 2, 3]);
        assert_eq!(g.neighbor_weights(0), &[1.0, 2.0, 3.0]);
        let pairs: Vec<(NodeId, f64)> = g.neighbors(0).collect();
        assert_eq!(pairs, vec![(1, 1.0), (2, 2.0), (3, 3.0)]);
        assert_eq!(g.neighbor_count(0), 3);
        assert_eq!(g.neighbor_ids(1), &[0]);
    }

    #[test]
    fn missing_edges_are_zero() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 1.0)]);
        assert_eq!(g.weight_between(0, 2), 0.0);
        assert_eq!(g.self_loop(2), 0.0);
        assert_eq!(g.neighbor_count(2), 0);
        assert!(g.neighbor_ids(2).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, Vec::new());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    #[test]
    fn for_each_neighbor_matches_rows() {
        let g = CsrGraph::from_edges(5, vec![(0, 4, 1.0), (0, 2, 2.0), (2, 4, 0.5), (1, 1, 9.0)]);
        let mut seen = Vec::new();
        g.for_each_neighbor(0, |u, w| seen.push((u, w)));
        assert_eq!(seen, vec![(2, 2.0), (4, 1.0)]);
        assert!(
            (g.strength(1) - 18.0).abs() < 1e-12,
            "self-loop counts twice in strength"
        );
    }
}
