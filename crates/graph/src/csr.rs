//! Compressed sparse row (CSR) weighted graph — the flat, immutable form
//! every repeated-sweep algorithm in this workspace runs on.
//!
//! ## Why CSR
//!
//! The sweep loops (Louvain local moving, the TxAllo optimization phases,
//! METIS refinement) visit every node's neighbor list thousands of times.
//! A nested `Vec<Vec<(NodeId, f64)>>` adjacency puts each list behind its
//! own heap allocation: one pointer chase and a likely cache miss per node,
//! plus allocator traffic when building levels. CSR packs the whole graph
//! into three flat arrays —
//!
//! ```text
//! offsets:   [0, 2, 5, …]           (n + 1 entries; row v = offsets[v]..offsets[v+1])
//! targets:   [1, 4, 0, 2, 9, …]     (neighbor ids, sorted ascending within a row)
//! weights:   [w, w, w, w, w, …]     (parallel to targets)
//! ```
//!
//! — so a sweep is one linear walk with perfect spatial locality, and a
//! neighbor lookup is a binary search over a contiguous row. Production
//! partitioners (METIS itself, and state-keeper batching in rollup
//! sequencers) use exactly this layout for the same reason.
//!
//! Rows are sorted and duplicate-merged at construction, which is also what
//! makes candidate enumeration deterministic: iterating a row yields
//! neighbors in ascending id order, so any per-community accumulation that
//! follows row order is reproducible bit-for-bit.

use crate::traits::{NodeId, WeightedGraph};

/// Immutable CSR weighted graph with per-node cached scalars.
///
/// Built once (from an edge list or any [`WeightedGraph`] snapshot), then
/// swept many times. Self-loops are stored out-of-band in a per-node array
/// — the sweep algebra (Eq. 6–8 of the paper) treats them separately from
/// proper edges, so keeping them out of the rows makes every row iteration
/// loop-free.
///
/// ```
/// use txallo_graph::{CsrGraph, WeightedGraph};
///
/// // Duplicate edges merge; both orientations accumulate on one row pair.
/// let g = CsrGraph::from_edges(3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 0.5)]);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbor_ids(1), &[0, 2]); // ascending, deterministic
/// assert_eq!(g.weight_between(0, 1), 3.0);
/// assert_eq!(g.incident_weight(1), 3.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// Row boundaries; `offsets[v]..offsets[v + 1]` indexes `targets`/`weights`.
    offsets: Vec<u32>,
    /// Neighbor ids, ascending within each row, duplicates merged.
    targets: Vec<NodeId>,
    /// Edge weights, parallel to `targets`.
    weights: Vec<f64>,
    /// Self-loop weight per node.
    self_loops: Vec<f64>,
    /// Cached incident weight per node (self-loop counted once).
    incident: Vec<f64>,
    total_weight: f64,
}

impl CsrGraph {
    /// Builds from an edge list. `edges` may contain duplicates and both
    /// orientations; weights accumulate. `(v, v, w)` entries accumulate
    /// into the self-loop of `v`.
    pub fn from_edges(
        node_count: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> Self {
        let mut self_loops = vec![0.0f64; node_count];
        let mut total = 0.0f64;
        // Pass 0: materialize non-loop edges once (the iterator may be lazy)
        // while folding loops and the total straight into their arrays.
        let mut flat: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for (a, b, w) in edges {
            debug_assert!(
                (a as usize) < node_count && (b as usize) < node_count,
                "edge ({a}, {b}) out of range for {node_count} nodes"
            );
            total += w;
            if a == b {
                self_loops[a as usize] += w;
            } else {
                flat.push((a, b, w));
            }
        }

        // Pass 1: row sizes (each non-loop edge lands in both rows).
        let mut offsets = vec![0u32; node_count + 1];
        for &(a, b, _) in &flat {
            offsets[a as usize + 1] += 1;
            offsets[b as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }

        // Pass 2: scatter into rows (unsorted, duplicates still present).
        let mut cursor: Vec<u32> = offsets[..node_count].to_vec();
        let mut targets = vec![0 as NodeId; flat.len() * 2];
        let mut weights = vec![0.0f64; flat.len() * 2];
        for &(a, b, w) in &flat {
            let ia = cursor[a as usize] as usize;
            targets[ia] = b;
            weights[ia] = w;
            cursor[a as usize] += 1;
            let ib = cursor[b as usize] as usize;
            targets[ib] = a;
            weights[ib] = w;
            cursor[b as usize] += 1;
        }
        drop(flat);

        // Pass 3: sort each row and merge duplicate targets in place,
        // compacting rows toward the front of the arrays.
        let mut incident = vec![0.0f64; node_count];
        let mut write = 0usize;
        let mut row: Vec<(NodeId, f64)> = Vec::new();
        let mut compact_offsets = vec![0u32; node_count + 1];
        for v in 0..node_count {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            row.clear();
            row.extend(
                targets[start..end]
                    .iter()
                    .copied()
                    .zip(weights[start..end].iter().copied()),
            );
            row.sort_unstable_by_key(|&(u, _)| u);
            let row_start = write;
            for &(u, w) in &row {
                if write > row_start && targets[write - 1] == u {
                    weights[write - 1] += w;
                } else {
                    targets[write] = u;
                    weights[write] = w;
                    write += 1;
                }
            }
            incident[v] = self_loops[v] + weights[row_start..write].iter().sum::<f64>();
            compact_offsets[v + 1] = write as u32;
        }
        targets.truncate(write);
        weights.truncate(write);
        targets.shrink_to_fit();
        weights.shrink_to_fit();

        Self {
            offsets: compact_offsets,
            targets,
            weights,
            self_loops,
            incident,
            total_weight: total,
        }
    }

    /// Snapshots any [`WeightedGraph`] into CSR form (used to freeze the
    /// mutable `TxGraph` before the repeated sweeps of G-TxAllo and METIS).
    pub fn from_graph(g: &(impl WeightedGraph + Sync)) -> Self {
        Self::snapshot(g, None)
    }

    /// Like [`CsrGraph::from_graph`] but with node ids remapped through
    /// `new_id` (a bijection onto `0..node_count`). Used to renumber a
    /// graph into canonical sweep order so that the sweeps walk rows
    /// sequentially.
    pub fn from_graph_relabeled(g: &(impl WeightedGraph + Sync), new_id: &[NodeId]) -> Self {
        assert_eq!(new_id.len(), g.node_count(), "one new id per node");
        Self::snapshot(g, Some(new_id))
    }

    /// Snapshot behind both constructors (`new_id = None` keeps the source
    /// ids). Two strategies, both free of per-row comparison sorts:
    ///
    /// * **Straight row copy** — when the ids are kept *and* the source
    ///   stores sorted rows ([`WeightedGraph::row_view`], i.e. the mutable
    ///   `TxGraph`'s sorted-run slab or another CSR): each row is one
    ///   contiguous copy/merge, sequential reads and writes, no scatter.
    /// * **Counting-sort scatter** — for relabeled snapshots (a straight
    ///   copy cannot produce rows sorted by *mapped* id) and sources
    ///   without sorted rows: count each row's degree (`neighbor_count`),
    ///   prefix-sum into the offsets, then visit *mapped* source ids in
    ///   ascending order and append each node to the rows of all its
    ///   neighbors — rows come out sorted by construction.
    ///
    /// Relies on the [`WeightedGraph`] contract that `for_each_neighbor`
    /// reports each neighbor exactly once (all implementors accumulate
    /// parallel edges at ingestion). Large fills are chunked across
    /// threads — each thread owns a contiguous row range, so the output is
    /// bit-identical regardless of thread count (`row_split` below).
    fn snapshot<G: WeightedGraph + Sync>(g: &G, new_id: Option<&[NodeId]>) -> Self {
        Self::snapshot_impl(g, new_id, None)
    }

    /// [`CsrGraph::snapshot`] with the chunk count overridable (tests force
    /// the parallel fill on small graphs to pin serial/parallel equality).
    fn snapshot_impl<G: WeightedGraph + Sync>(
        g: &G,
        new_id: Option<&[NodeId]>,
        forced_chunks: Option<usize>,
    ) -> Self {
        let n = g.node_count();
        let map = |v: NodeId| new_id.map_or(v, |ids| ids[v as usize]);
        // Pass 1 is O(n), no adjacency iteration at all: `neighbor_count`
        // and `self_loop` are O(1) accessors on every implementor, and the
        // total weight is the source graph's own accumulator (re-summing
        // it over the edges — what the edge-list build did — costs a full
        // extra adjacency walk for a value the graph already maintains).
        let mut inv: Vec<NodeId> = vec![0; n];
        let mut self_loops = vec![0.0f64; n];
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n as NodeId {
            let nv = map(v) as usize;
            debug_assert!(nv < n, "new_id must map onto 0..n");
            inv[nv] = v;
            offsets[nv + 1] = g.neighbor_count(v) as u32;
            let loop_w = g.self_loop(v);
            if loop_w > 0.0 {
                self_loops[nv] = loop_w;
            }
        }
        let total = g.total_weight();
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }

        let entries = offsets[n] as usize;
        let mut targets = vec![0 as NodeId; entries];
        let mut weights = vec![0.0f64; entries];
        let splits = row_split(&offsets, entries, forced_chunks);
        // Identity mapping over a sorted-row source: straight copies (the
        // `row_view` contract is uniform across nodes, so probing one row
        // decides for the build; the loop debug-asserts the rest).
        let direct = new_id.is_none() && n > 0 && g.row_view(0).is_some();
        if direct {
            if splits.len() == 2 {
                copy_rows(g, 0, n, &offsets, &mut targets, &mut weights);
            } else {
                // txallo-lint: allow(D5-thread-spawn) — data-parallel straight copies into disjoint &mut chunks, no cross-chunk float fold; bit-identity at every chunk count is pinned by chunked_fill_matches_serial_fill
                std::thread::scope(|scope| {
                    let mut rest_t = &mut targets[..];
                    let mut rest_w = &mut weights[..];
                    for pair in splits.windows(2) {
                        let (lo, hi) = (pair[0], pair[1]);
                        let len = offsets[hi] as usize - offsets[lo] as usize;
                        let (chunk_t, tail_t) = rest_t.split_at_mut(len);
                        let (chunk_w, tail_w) = rest_w.split_at_mut(len);
                        rest_t = tail_t;
                        rest_w = tail_w;
                        let offsets = &offsets;
                        scope.spawn(move || {
                            copy_rows(g, lo, hi, offsets, chunk_t, chunk_w);
                        });
                    }
                });
            }
        } else if splits.len() == 2 {
            fill_rows(g, &inv, map, 0, n, &offsets, &mut targets, &mut weights);
        } else {
            // Chunked parallel fill: thread t owns rows lo..hi, which map
            // to the contiguous entry range offsets[lo]..offsets[hi] — the
            // arrays split into disjoint &mut slices, every slot has
            // exactly one writer, and each thread appends in the same
            // ascending source order the serial fill uses.
            // txallo-lint: allow(D5-thread-spawn) — each thread writes its own disjoint entry range in serial order, no shared mutation or cross-chunk float fold; pinned by chunked_fill_matches_serial_fill
            std::thread::scope(|scope| {
                let mut rest_t = &mut targets[..];
                let mut rest_w = &mut weights[..];
                let mut consumed = 0usize;
                for pair in splits.windows(2) {
                    let (lo, hi) = (pair[0], pair[1]);
                    let len = offsets[hi] as usize - offsets[lo] as usize;
                    let (chunk_t, tail_t) = rest_t.split_at_mut(len);
                    let (chunk_w, tail_w) = rest_w.split_at_mut(len);
                    rest_t = tail_t;
                    rest_w = tail_w;
                    debug_assert_eq!(consumed, offsets[lo] as usize);
                    consumed += len;
                    let (offsets, inv) = (&offsets, &inv);
                    scope.spawn(move || {
                        fill_rows(g, inv, map, lo, hi, offsets, chunk_t, chunk_w);
                    });
                }
            });
        }

        let mut incident = vec![0.0f64; n];
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            // Same fold shape as the edge-list path: the row summed on its
            // own from 0, then added to the self-loop.
            incident[v] = self_loops[v] + weights[s..e].iter().sum::<f64>();
            // Release-mode guard for the `for_each_neighbor` uniqueness
            // contract (see `WeightedGraph`): a source graph reporting a
            // neighbor twice would leave this row non-ascending and every
            // binary search over it silently wrong. One predictable
            // compare per entry, amortized into the incident fold pass.
            assert!(
                targets[s..e].windows(2).all(|w| w[0] < w[1]),
                "row {v} is not strictly ascending: the source graph's \
                 for_each_neighbor reported a duplicate neighbor"
            );
        }

        Self {
            offsets,
            targets,
            weights,
            self_loops,
            incident,
            total_weight: total,
        }
    }

    /// Builds directly from pre-assembled CSR arrays: row boundaries,
    /// targets/weights (rows strictly ascending by id, duplicates already
    /// merged, each unordered non-loop edge present in both endpoint rows),
    /// per-node self-loops and the total weight.
    ///
    /// This is the entry point for producers that assemble sorted rows
    /// themselves (e.g. the Louvain aggregation's counting-sort build) —
    /// no edge-list round trip, no re-sort. The incident cache is derived
    /// here with the canonical fold (`self_loop + Σ row`, the row summed
    /// on its own in ascending order), and the ascending-row invariant is
    /// verified like in every other constructor.
    ///
    /// # Panics
    /// Panics when the arrays are inconsistent or any row is not strictly
    /// ascending.
    pub fn from_sorted_rows(
        offsets: Vec<u32>,
        targets: Vec<NodeId>,
        weights: Vec<f64>,
        self_loops: Vec<f64>,
        total_weight: f64,
    ) -> Self {
        let n = self_loops.len();
        assert_eq!(offsets.len(), n + 1, "one offset bound per node plus end");
        assert_eq!(offsets[0], 0, "rows start at 0");
        assert_eq!(offsets[n] as usize, targets.len(), "offsets cover targets");
        assert_eq!(targets.len(), weights.len(), "parallel arrays");
        let mut incident = vec![0.0f64; n];
        for v in 0..n {
            let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
            incident[v] = self_loops[v] + weights[s..e].iter().sum::<f64>();
            assert!(
                targets[s..e].windows(2).all(|w| w[0] < w[1]),
                "row {v} is not strictly ascending"
            );
        }
        Self {
            offsets,
            targets,
            weights,
            self_loops,
            incident,
            total_weight,
        }
    }

    /// Number of distinct unordered non-loop edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// The sorted neighbor ids of `v`.
    #[inline]
    pub fn neighbor_ids(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = self.row(v);
        &self.targets[s..e]
    }

    /// The edge weights of `v`, parallel to [`CsrGraph::neighbor_ids`].
    #[inline]
    pub fn neighbor_weights(&self, v: NodeId) -> &[f64] {
        let (s, e) = self.row(v);
        &self.weights[s..e]
    }

    /// `(neighbor, weight)` pairs of `v` in ascending neighbor order.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.neighbor_ids(v)
            .iter()
            .copied()
            .zip(self.neighbor_weights(v).iter().copied())
    }

    /// Edge weight between `a` and `b` (self-loop when equal), 0 if absent.
    pub fn weight_between(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return self.self_loops[a as usize];
        }
        let ids = self.neighbor_ids(a);
        match ids.binary_search(&b) {
            Ok(i) => self.neighbor_weights(a)[i],
            Err(_) => 0.0,
        }
    }

    #[inline]
    fn row(&self, v: NodeId) -> (usize, usize) {
        (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        )
    }
}

/// The straight-copy fill of [`CsrGraph::snapshot`] over the row range
/// `lo..hi` (identity mapping): each source row is already an ascending-id
/// sorted run pair ([`WeightedGraph::row_view`]), so the fill is one
/// two-run merge copy per row — sequential reads, sequential writes, no
/// scatter. `targets`/`weights` cover exactly the entry range
/// `offsets[lo]..offsets[hi]` (chunk-relative indexing).
fn copy_rows<G: WeightedGraph>(
    g: &G,
    lo: usize,
    hi: usize,
    offsets: &[u32],
    targets: &mut [NodeId],
    weights: &mut [f64],
) {
    let base = offsets[lo] as usize;
    for v in lo..hi {
        let view = g
            .row_view(v as NodeId)
            .expect("row_view is uniform across nodes"); // txallo-lint: allow(lib-unwrap) — the direct path is taken only after probing row_view(0), and the trait contract makes the answer uniform across nodes
        let mut pos = offsets[v] as usize - base;
        debug_assert_eq!(
            offsets[v + 1] as usize - offsets[v] as usize,
            view.run_ids.len() + view.tail_ids.len(),
            "row_view disagrees with neighbor_count for node {v}"
        );
        if view.tail_ids.is_empty() {
            targets[pos..pos + view.run_ids.len()].copy_from_slice(view.run_ids);
            weights[pos..pos + view.run_ws.len()].copy_from_slice(view.run_ws);
            continue;
        }
        let (mut i, mut j) = (0usize, 0usize);
        while i < view.run_ids.len() && j < view.tail_ids.len() {
            if view.run_ids[i] < view.tail_ids[j] {
                targets[pos] = view.run_ids[i];
                weights[pos] = view.run_ws[i];
                i += 1;
            } else {
                targets[pos] = view.tail_ids[j];
                weights[pos] = view.tail_ws[j];
                j += 1;
            }
            pos += 1;
        }
        let run_rest = view.run_ids.len() - i;
        targets[pos..pos + run_rest].copy_from_slice(&view.run_ids[i..]);
        weights[pos..pos + run_rest].copy_from_slice(&view.run_ws[i..]);
        pos += run_rest;
        let tail_rest = view.tail_ids.len() - j;
        targets[pos..pos + tail_rest].copy_from_slice(&view.tail_ids[j..]);
        weights[pos..pos + tail_rest].copy_from_slice(&view.tail_ws[j..]);
    }
}

/// The counting-sort fill of [`CsrGraph::snapshot`] over the row range
/// `lo..hi` (mapped ids): visits *mapped* source ids ascending and appends
/// each to its neighbors' rows, so rows come out sorted by construction.
/// `targets`/`weights` cover exactly the entry range
/// `offsets[lo]..offsets[hi]` (chunk-relative indexing).
#[allow(clippy::too_many_arguments)]
fn fill_rows<G: WeightedGraph>(
    g: &G,
    inv: &[NodeId],
    map: impl Fn(NodeId) -> NodeId,
    lo: usize,
    hi: usize,
    offsets: &[u32],
    targets: &mut [NodeId],
    weights: &mut [f64],
) {
    let base = offsets[lo] as usize;
    let mut cursor: Vec<u32> = offsets[lo..hi].to_vec();
    for i in 0..inv.len() as NodeId {
        let v = inv[i as usize];
        g.for_each_neighbor(v, |u, w| {
            let row = map(u) as usize;
            if (lo..hi).contains(&row) {
                let pos = cursor[row - lo] as usize - base;
                targets[pos] = i;
                weights[pos] = w;
                cursor[row - lo] += 1;
            }
        });
    }
}

/// Row-range boundaries for the chunked fill: `[0, b₁, …, n]` with roughly
/// equal entry counts per chunk (the shared
/// [`entry_balanced_split`](crate::par::entry_balanced_split) rule).
/// Returns the single range `[0, n]` (serial fill) for small graphs, where
/// each extra thread re-reads the whole adjacency for a fraction of the
/// writes and spawn overhead dominates.
fn row_split(offsets: &[u32], entries: usize, forced_chunks: Option<usize>) -> Vec<usize> {
    /// Entry count below which the fill stays serial.
    const PAR_THRESHOLD: usize = 1 << 19;
    /// Each chunk re-scans the full adjacency, so the read traffic grows
    /// linearly with the chunk count — past a few threads the re-reads eat
    /// the parallel-write win.
    const MAX_CHUNKS: usize = 4;
    let n = offsets.len() - 1;
    let chunks = forced_chunks.unwrap_or_else(|| {
        // txallo-lint: allow(D5-thread-spawn) — reads core count only to size chunks; the fill output is bit-identical at every chunk count, so parallelism never leaks into results
        std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(MAX_CHUNKS)
    });
    if (entries < PAR_THRESHOLD && forced_chunks.is_none()) || chunks < 2 || n < chunks {
        return vec![0, n];
    }
    crate::par::entry_balanced_split(offsets, chunks)
}

impl WeightedGraph for CsrGraph {
    fn node_count(&self) -> usize {
        self.self_loops.len()
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn self_loop(&self, v: NodeId) -> f64 {
        self.self_loops[v as usize]
    }

    fn incident_weight(&self, v: NodeId) -> f64 {
        self.incident[v as usize]
    }

    #[inline]
    fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId, f64)) {
        let (s, e) = self.row(v);
        for i in s..e {
            f(self.targets[i], self.weights[i]);
        }
    }

    fn neighbor_count(&self, v: NodeId) -> usize {
        let (s, e) = self.row(v);
        e - s
    }

    fn row_view(&self, v: NodeId) -> Option<crate::traits::RowView<'_>> {
        Some(crate::traits::RowView {
            run_ids: self.neighbor_ids(v),
            run_ws: self.neighbor_weights(v),
            tail_ids: &[],
            tail_ws: &[],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_merges_duplicates() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 0.5), (0, 0, 0.25)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!((g.weight_between(0, 1) - 3.0).abs() < 1e-12);
        assert!((g.weight_between(1, 0) - 3.0).abs() < 1e-12);
        assert!((g.self_loop(0) - 0.25).abs() < 1e-12);
        assert!((g.total_weight() - 3.75).abs() < 1e-12);
        assert!((g.incident_weight(0) - 3.25).abs() < 1e-12);
        assert!((g.incident_weight(1) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn rows_are_sorted_and_parallel() {
        let g = CsrGraph::from_edges(4, vec![(0, 3, 3.0), (0, 1, 1.0), (0, 2, 2.0)]);
        assert_eq!(g.neighbor_ids(0), &[1, 2, 3]);
        assert_eq!(g.neighbor_weights(0), &[1.0, 2.0, 3.0]);
        let pairs: Vec<(NodeId, f64)> = g.neighbors(0).collect();
        assert_eq!(pairs, vec![(1, 1.0), (2, 2.0), (3, 3.0)]);
        assert_eq!(g.neighbor_count(0), 3);
        assert_eq!(g.neighbor_ids(1), &[0]);
    }

    #[test]
    fn missing_edges_are_zero() {
        let g = CsrGraph::from_edges(3, vec![(0, 1, 1.0)]);
        assert_eq!(g.weight_between(0, 2), 0.0);
        assert_eq!(g.self_loop(2), 0.0);
        assert_eq!(g.neighbor_count(2), 0);
        assert!(g.neighbor_ids(2).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, Vec::new());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_weight(), 0.0);
    }

    /// A messy deterministic pseudo-random graph for the snapshot tests:
    /// hubs, chords, self-loops, non-dyadic weights.
    fn scrambled_graph(n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for a in 0..n as NodeId {
            for hop in [1usize, 7, 13] {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((a as usize + hop * (1 + (x >> 60) as usize)) % n) as NodeId;
                if a != b {
                    edges.push((a, b, 1.0 + (x >> 40) as f64 / 3.0));
                }
            }
            if a % 9 == 0 {
                edges.push((a, a, 0.5 + a as f64 / 7.0));
            }
        }
        CsrGraph::from_edges(n, edges)
    }

    /// The radix snapshot must reproduce the edge-list constructor's arrays
    /// bit-for-bit (rows sorted by construction vs per-row sort + merge).
    #[test]
    fn radix_snapshot_matches_edge_list_build() {
        let g = scrambled_graph(120);
        // The old snapshot policy, spelled out: positive loops + each
        // unordered edge once, then the duplicate-merging edge-list build.
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for v in 0..g.node_count() as NodeId {
            let loop_w = g.self_loop(v);
            if loop_w > 0.0 {
                edges.push((v, v, loop_w));
            }
            g.for_each_neighbor(v, |u, w| {
                if v < u {
                    edges.push((v, u, w));
                }
            });
        }
        let reference = CsrGraph::from_edges(g.node_count(), edges);
        let radix = CsrGraph::from_graph(&g);
        assert_eq!(radix.offsets, reference.offsets);
        assert_eq!(radix.targets, reference.targets);
        assert_eq!(radix.weights, reference.weights, "bit-for-bit weights");
        assert_eq!(radix.self_loops, reference.self_loops);
        assert_eq!(radix.incident, reference.incident, "bit-for-bit incident");
        // The total is taken from the source graph's own accumulator
        // instead of re-summed over the extracted edges, so it agrees up
        // to summation-order rounding (and exactly with the source).
        let tol = 1e-12 * reference.total_weight.abs();
        assert!((radix.total_weight - reference.total_weight).abs() < tol);
        assert_eq!(radix.total_weight.to_bits(), g.total_weight().to_bits());
    }

    #[test]
    fn relabeled_snapshot_permutes_rows() {
        let g = scrambled_graph(60);
        let n = g.node_count();
        // Reverse permutation: new_id[v] = n - 1 - v.
        let new_id: Vec<NodeId> = (0..n as NodeId).map(|v| (n - 1) as NodeId - v).collect();
        let relabeled = CsrGraph::from_graph_relabeled(&g, &new_id);
        assert_eq!(relabeled.node_count(), n);
        assert_eq!(relabeled.edge_count(), g.edge_count());
        for v in 0..n as NodeId {
            let nv = new_id[v as usize];
            assert_eq!(relabeled.self_loop(nv).to_bits(), g.self_loop(v).to_bits());
            assert_eq!(
                relabeled.neighbor_count(nv),
                g.neighbor_count(v),
                "row {v} size"
            );
            g.for_each_neighbor(v, |u, w| {
                assert_eq!(
                    relabeled.weight_between(nv, new_id[u as usize]).to_bits(),
                    w.to_bits()
                );
            });
            let ids = relabeled.neighbor_ids(nv);
            assert!(ids.windows(2).all(|p| p[0] < p[1]), "row {nv} sorted");
        }
    }

    /// The chunked (parallel) fill must produce exactly the serial arrays —
    /// forced onto a small graph so the test exercises real thread chunks.
    #[test]
    fn chunked_fill_matches_serial_fill() {
        let g = scrambled_graph(150);
        let n = g.node_count();
        let reversed: Vec<NodeId> = (0..n as NodeId).map(|v| (n - 1) as NodeId - v).collect();
        for new_id in [None, Some(&reversed[..])] {
            let serial = CsrGraph::snapshot_impl(&g, new_id, None);
            for chunks in [2usize, 3, 5] {
                let chunked = CsrGraph::snapshot_impl(&g, new_id, Some(chunks));
                assert_eq!(chunked.offsets, serial.offsets, "{chunks} chunks");
                assert_eq!(chunked.targets, serial.targets, "{chunks} chunks");
                assert_eq!(chunked.weights, serial.weights, "{chunks} chunks");
                assert_eq!(chunked.incident, serial.incident, "{chunks} chunks");
            }
        }
    }

    #[test]
    fn row_split_covers_all_rows_with_balanced_chunks() {
        // Fabricated offsets: 10 rows, skewed entry counts.
        let offsets: Vec<u32> = vec![0, 50, 50, 60, 200, 210, 220, 400, 410, 420, 500];
        let splits = row_split(&offsets, 500, Some(4));
        assert_eq!(*splits.first().unwrap(), 0);
        assert_eq!(*splits.last().unwrap(), 10);
        assert!(
            splits.windows(2).all(|p| p[0] < p[1]),
            "strictly increasing"
        );
        // Serial fallbacks.
        assert_eq!(
            row_split(&offsets, 500, None),
            vec![0, 10],
            "below threshold"
        );
        assert_eq!(row_split(&offsets, 500, Some(1)), vec![0, 10]);
        assert_eq!(row_split(&[0], 0, Some(4)), vec![0, 0], "empty graph");
    }

    #[test]
    fn for_each_neighbor_matches_rows() {
        let g = CsrGraph::from_edges(5, vec![(0, 4, 1.0), (0, 2, 2.0), (2, 4, 0.5), (1, 1, 9.0)]);
        let mut seen = Vec::new();
        g.for_each_neighbor(0, |u, w| seen.push((u, w)));
        assert_eq!(seen, vec![(2, 2.0), (4, 1.0)]);
        assert!(
            (g.strength(1) - 18.0).abs() < 1e-12,
            "self-loop counts twice in strength"
        );
    }
}
