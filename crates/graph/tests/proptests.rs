//! Property-based tests of the transaction graph invariants.

use proptest::prelude::*;
use txallo_graph::{AdjacencyGraph, NodeId, SlidingWindowGraph, TxGraph, WeightedGraph};
use txallo_model::{AccountId, Block, Transaction};

fn txs_strategy(max_acct: u64, len: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..max_acct, 0..max_acct), 1..len)
}

fn build(pairs: &[(u64, u64)]) -> TxGraph {
    let mut g = TxGraph::new();
    for &(a, b) in pairs {
        g.ingest_transaction(&Transaction::transfer(AccountId(a), AccountId(b)));
    }
    g
}

proptest! {
    /// Total weight equals transaction count; incident weights are
    /// consistent with adjacency; strength double-counts self-loops.
    #[test]
    fn weight_accounting(pairs in txs_strategy(40, 80)) {
        let g = build(&pairs);
        prop_assert!((g.total_weight() - pairs.len() as f64).abs() < 1e-9);
        let mut incident_sum = 0.0;
        let mut loop_sum = 0.0;
        for v in 0..g.node_count() as NodeId {
            let mut s = g.self_loop(v);
            g.for_each_neighbor(v, |_, w| s += w);
            prop_assert!((s - g.incident_weight(v)).abs() < 1e-9);
            prop_assert!((g.strength(v) - (g.incident_weight(v) + g.self_loop(v))).abs() < 1e-12);
            incident_sum += g.incident_weight(v);
            loop_sum += g.self_loop(v);
        }
        // Σ incident = 2·(non-loop weight) + loop weight.
        let non_loop = g.total_weight() - loop_sum;
        prop_assert!((incident_sum - (2.0 * non_loop + loop_sum)).abs() < 1e-6);
    }

    /// Removing the same transactions that were added restores the empty
    /// weight state (node ids persist).
    #[test]
    fn add_remove_roundtrip(pairs in txs_strategy(30, 40)) {
        let mut g = build(&pairs);
        for &(a, b) in &pairs {
            g.remove_transaction(&Transaction::transfer(AccountId(a), AccountId(b)));
        }
        prop_assert!(g.total_weight().abs() < 1e-6);
        prop_assert_eq!(g.transaction_count(), 0);
        for v in 0..g.node_count() as NodeId {
            prop_assert!(g.incident_weight(v).abs() < 1e-6);
            prop_assert!(g.self_loop(v).abs() < 1e-6);
        }
    }

    /// A sliding window over blocks equals a fresh graph over the same
    /// retained suffix.
    #[test]
    fn window_equals_fresh_suffix(
        blocks in prop::collection::vec(txs_strategy(20, 10), 2..8),
        window in 1usize..4,
    ) {
        let mut win = SlidingWindowGraph::new(window);
        let all: Vec<Block> = blocks
            .iter()
            .enumerate()
            .map(|(h, pairs)| {
                Block::new(
                    h as u64,
                    pairs
                        .iter()
                        .map(|&(a, b)| Transaction::transfer(AccountId(a), AccountId(b)))
                        .collect(),
                )
            })
            .collect();
        for b in &all {
            win.push_block(b.clone());
        }
        let start = all.len().saturating_sub(window);
        let mut fresh = TxGraph::new();
        for b in &all[start..] {
            fresh.ingest_block(b);
        }
        prop_assert!((win.graph().total_weight() - fresh.total_weight()).abs() < 1e-6);
        prop_assert_eq!(win.graph().transaction_count(), fresh.transaction_count());
        // Compare all surviving pair weights through account identity.
        for v in 0..fresh.node_count() as NodeId {
            let acct_v = fresh.account(v);
            let wv = win.graph().node_of(acct_v).expect("account interned in window");
            fresh.for_each_neighbor(v, |u, w| {
                let acct_u = fresh.account(u);
                let wu = win.graph().node_of(acct_u).expect("interned");
                assert!(
                    (win.graph().weight_between(wv, wu) - w).abs() < 1e-6,
                    "weight mismatch {acct_v}-{acct_u}"
                );
            });
        }
    }

    /// AdjacencyGraph::from_graph is weight-preserving for arbitrary input.
    #[test]
    fn adjacency_snapshot_preserves(pairs in txs_strategy(25, 50)) {
        let g = build(&pairs);
        let snap = AdjacencyGraph::from_graph(&g);
        prop_assert_eq!(snap.node_count(), g.node_count());
        prop_assert!((snap.total_weight() - g.total_weight()).abs() < 1e-9);
        for v in 0..g.node_count() as NodeId {
            prop_assert!((snap.incident_weight(v) - g.incident_weight(v)).abs() < 1e-9);
            prop_assert!((snap.self_loop(v) - g.self_loop(v)).abs() < 1e-9);
            prop_assert_eq!(snap.neighbor_count(v), g.neighbor_count(v));
        }
    }

    /// The canonical order is a permutation, independent of weights, and
    /// identical across graphs interning the same accounts in the same
    /// order.
    #[test]
    fn canonical_order_permutation(pairs in txs_strategy(30, 40)) {
        let g = build(&pairs);
        let order = g.nodes_in_canonical_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.node_count() as NodeId).collect::<Vec<_>>());
    }

    /// CsrGraph::from_graph(TxGraph) preserves every quantity the sweep
    /// algebra reads: node count, total weight, per-node self-loops and
    /// incident weights, and the exact neighbor sets with their weights.
    #[test]
    fn csr_snapshot_preserves_graph(pairs in txs_strategy(35, 70)) {
        let g = build(&pairs);
        let csr = txallo_graph::CsrGraph::from_graph(&g);
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert!((csr.total_weight() - g.total_weight()).abs() < 1e-9);
        for v in 0..g.node_count() as NodeId {
            prop_assert!((csr.self_loop(v) - g.self_loop(v)).abs() < 1e-9);
            prop_assert!((csr.incident_weight(v) - g.incident_weight(v)).abs() < 1e-9);
            prop_assert_eq!(csr.neighbor_count(v), g.neighbor_count(v));
            // Neighbor sets: CSR rows are sorted; every TxGraph edge must
            // appear with the same weight, and vice versa by counting.
            let ids = csr.neighbor_ids(v);
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "row must be strictly sorted");
            let mut seen = 0usize;
            g.for_each_neighbor(v, |u, w| {
                seen += 1;
                let csr_w = csr.weight_between(v, u);
                assert!((csr_w - w).abs() < 1e-9, "edge ({v},{u}) weight {w} vs {csr_w}");
            });
            prop_assert_eq!(seen, ids.len());
        }
    }

    /// The sorted-run slab adjacency must track a hash/ordered-map
    /// reference **bit-for-bit** through an arbitrary ingest stream:
    /// repeated pairs accumulate chronologically to identical weights,
    /// rows stay strictly ascending after every (amortized) merge, and
    /// every derived scalar matches the reference fold.
    #[test]
    fn slab_adjacency_matches_map_reference_bitwise(pairs in txs_strategy(30, 120)) {
        use std::collections::BTreeMap;
        let mut g = TxGraph::new();
        // Reference: per-node map keyed by neighbor, weights accumulated
        // in the same chronological per-pair order ingestion uses.
        let mut adj: Vec<BTreeMap<NodeId, f64>> = Vec::new();
        let mut loops: Vec<f64> = Vec::new();
        let mut interner: std::collections::HashMap<u64, NodeId> = std::collections::HashMap::new();
        for &(a, b) in &pairs {
            let tx = Transaction::transfer(AccountId(a), AccountId(b));
            g.ingest_transaction(&tx);
            let mut node = |acct: AccountId, adj: &mut Vec<BTreeMap<NodeId, f64>>, loops: &mut Vec<f64>| {
                let next = interner.len() as NodeId;
                *interner.entry(acct.0).or_insert_with(|| {
                    adj.push(BTreeMap::new());
                    loops.push(0.0);
                    next
                })
            };
            // Intern in `account_set` order (sorted/deduped) — the order
            // ingestion itself uses.
            let set = tx.account_set();
            let nodes: Vec<NodeId> = set.iter().map(|&acct| node(acct, &mut adj, &mut loops)).collect();
            if nodes.len() == 1 {
                loops[nodes[0] as usize] += 1.0;
            } else {
                let (na, nb) = (nodes[0], nodes[1]);
                *adj[na as usize].entry(nb).or_insert(0.0) += 1.0;
                *adj[nb as usize].entry(na).or_insert(0.0) += 1.0;
            }
            // Invariant checked after *every* transaction, so a merge at
            // any trigger point is covered: rows ascending, weights
            // bit-identical to the reference accumulation.
            for v in 0..g.node_count() as NodeId {
                let mut seen: Vec<(NodeId, u64)> = Vec::new();
                g.for_each_neighbor(v, |u, w| seen.push((u, w.to_bits())));
                assert!(
                    seen.windows(2).all(|p| p[0].0 < p[1].0),
                    "row {v} not strictly ascending"
                );
                let expect: Vec<(NodeId, u64)> = adj[v as usize]
                    .iter()
                    .map(|(&u, &w)| (u, w.to_bits()))
                    .collect();
                assert_eq!(seen, expect, "row {v} diverged from the map reference");
                assert_eq!(g.self_loop(v).to_bits(), loops[v as usize].to_bits());
            }
        }
        // Interning order agrees (first-seen), so node ids line up 1:1.
        prop_assert_eq!(g.node_count(), interner.len());
    }

    /// Degenerate streams: pure self-transfers and one pair repeated many
    /// times — the slab must keep exact unit accumulation with no spurious
    /// edges (the satellite's degenerate coverage at property scale).
    #[test]
    fn slab_degenerate_self_and_repeat_streams(
        selfers in 1usize..60,
        repeats in 1usize..200,
    ) {
        let mut g = TxGraph::new();
        for _ in 0..selfers {
            g.ingest_transaction(&Transaction::transfer(AccountId(7), AccountId(7)));
        }
        for _ in 0..repeats {
            g.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
        }
        let n7 = g.node_of(AccountId(7)).unwrap();
        prop_assert_eq!(g.neighbor_count(n7), 0);
        prop_assert_eq!(g.self_loop(n7).to_bits(), (selfers as f64).to_bits());
        let (n1, n2) = (g.node_of(AccountId(1)).unwrap(), g.node_of(AccountId(2)).unwrap());
        prop_assert_eq!(g.edge_count(), 1);
        prop_assert_eq!(g.weight_between(n1, n2).to_bits(), (repeats as f64).to_bits());
        prop_assert_eq!(g.weight_between(n2, n1).to_bits(), (repeats as f64).to_bits());
        prop_assert!((g.total_weight() - (selfers + repeats) as f64).abs() < 1e-12);
    }

    /// Strength and the incident/self-loop identities hold on the CSR form.
    #[test]
    fn csr_weight_identities(pairs in txs_strategy(25, 50)) {
        let g = build(&pairs);
        let csr = txallo_graph::CsrGraph::from_graph(&g);
        for v in 0..csr.node_count() as NodeId {
            let row_sum: f64 = csr.neighbor_weights(v).iter().sum();
            prop_assert!((csr.incident_weight(v) - (row_sum + csr.self_loop(v))).abs() < 1e-9);
            prop_assert!(
                (csr.strength(v) - (csr.incident_weight(v) + csr.self_loop(v))).abs() < 1e-12
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cold-row eviction is bitwise transparent: a graph running under any
    /// residency window, through any interleaving of ingestion epochs and
    /// decay rescales, reads back — row weights, scalars, totals — exactly
    /// the bits of a twin that never evicted anything.
    #[test]
    fn residency_eviction_is_bitwise_transparent(
        epochs in prop::collection::vec(
            (prop::collection::vec((0u64..30, 0u64..30), 1..20), 0.5f64..1.0),
            2..12,
        ),
        window in 1u32..4,
    ) {
        use txallo_graph::ResidencyConfig;
        let mut plain = TxGraph::new();
        let mut evicting = TxGraph::new();
        evicting.enable_residency(&ResidencyConfig::in_memory(window));
        for (pairs, decay) in &epochs {
            plain.apply_decay(*decay);
            evicting.apply_decay(*decay);
            for &(a, b) in pairs {
                let tx = Transaction::transfer(AccountId(a), AccountId(b));
                plain.ingest_transaction(&tx);
                evicting.ingest_transaction(&tx);
            }
            evicting.advance_residency_epoch();
        }
        evicting.ensure_all_resident();
        prop_assert_eq!(plain.node_count(), evicting.node_count());
        prop_assert_eq!(plain.total_weight().to_bits(), evicting.total_weight().to_bits());
        for v in 0..plain.node_count() as NodeId {
            prop_assert_eq!(plain.self_loop(v).to_bits(), evicting.self_loop(v).to_bits());
            prop_assert_eq!(
                plain.incident_weight(v).to_bits(),
                evicting.incident_weight(v).to_bits()
            );
            let mut want = Vec::new();
            plain.for_each_neighbor(v, |u, w| want.push((u, w.to_bits())));
            let mut got = Vec::new();
            evicting.for_each_neighbor(v, |u, w| got.push((u, w.to_bits())));
            prop_assert_eq!(want, got);
        }
    }
}
