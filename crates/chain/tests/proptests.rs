//! Property-based tests of the consensus substrate.

use proptest::prelude::*;
use txallo_chain::{
    AtomixProtocol, ChainEngine, ChainEngineConfig, PbftShard, Validator, ValidatorSet,
};
use txallo_core::Allocation;
use txallo_graph::{TxGraph, WeightedGraph};
use txallo_model::{AccountId, Block, Transaction};

fn members(n: usize, byz: usize) -> Vec<Validator> {
    (0..n as u32)
        .map(|id| Validator {
            id,
            byzantine: (id as usize) < byz,
        })
        .collect()
}

proptest! {
    /// PBFT safety/liveness boundary: commits iff honest ≥ 2f + 1.
    #[test]
    fn pbft_quorum_boundary(n in 4usize..40, byz_frac in 0.0f64..1.0) {
        let byz = ((n as f64) * byz_frac) as usize;
        let mut shard = PbftShard::new(members(n, byz));
        let expected = (n - byz) >= shard.quorum();
        let out = shard.run_round();
        prop_assert_eq!(out.committed, expected, "n={} byz={} quorum={}", n, byz, shard.quorum());
    }

    /// Validator reshuffling conserves the population and keeps shard
    /// sizes within one of each other, at every epoch.
    #[test]
    fn reshuffle_conserves_and_balances(
        total in 8usize..120,
        shards in 1usize..8,
        epoch in 0u64..50,
    ) {
        prop_assume!(total >= shards);
        let mut set = ValidatorSet::new(total, total / 5, shards);
        set.reshuffle(epoch);
        let sizes: Vec<usize> = (0..shards as u32).map(|s| set.shard_members(s).len()).collect();
        prop_assert_eq!(sizes.iter().sum::<usize>(), total);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?}");
    }

    /// Atomix atomicity: the outcome is commit iff every involved shard
    /// could commit both its rounds.
    #[test]
    fn atomix_atomicity(healthy in prop::collection::vec(any::<bool>(), 2..6)) {
        let mut shards: Vec<PbftShard> = healthy
            .iter()
            .map(|&ok| {
                if ok {
                    PbftShard::new(members(4, 0))
                } else {
                    PbftShard::new(members(4, 3)) // quorum-less
                }
            })
            .collect();
        let ids: Vec<u32> = (0..shards.len() as u32).collect();
        let out = AtomixProtocol::run(&mut shards, &ids);
        prop_assert_eq!(out.committed, healthy.iter().all(|&h| h));
        prop_assert_eq!(out.rounds as usize, 2 * healthy.len());
    }

    /// The engine conserves transactions: committed + aborted equals the
    /// number fed in, for arbitrary small traffic patterns.
    #[test]
    fn engine_conserves_transactions(pairs in prop::collection::vec((0u64..20, 0u64..20), 1..40)) {
        let mut g = TxGraph::new();
        let txs: Vec<Transaction> = pairs
            .iter()
            .map(|&(a, b)| Transaction::transfer(AccountId(a), AccountId(b)))
            .collect();
        let n_txs = txs.len() as u64;
        let block = Block::new(0, txs);
        g.ingest_block(&block);
        let labels: Vec<u32> = (0..g.node_count() as u32).map(|v| v % 3).collect();
        let alloc = Allocation::new(labels, 3);
        let mut engine = ChainEngine::new(ChainEngineConfig {
            shards: 3,
            validators: 12,
            byzantine: 0,
            batch_size: 8,
            reshuffle_interval: 0,
        });
        engine.process_block(&block, &g, &alloc);
        let r = engine.report();
        prop_assert_eq!(r.intra_committed + r.cross_committed + r.aborted, n_txs);
        prop_assert_eq!(r.aborted, 0, "no faults configured");
        prop_assert!(r.total_messages > 0);
    }
}
