//! Property-based tests of the consensus substrate.

use proptest::prelude::*;
use txallo_chain::{
    AtomixProtocol, ChainEngine, ChainEngineConfig, ChainService, ChainServiceConfig,
    FaultInjector, FaultPlan, PbftShard, Validator, ValidatorSet,
};
use txallo_core::{Allocation, HybridSchedule};
use txallo_graph::{TxGraph, WeightedGraph};
use txallo_model::{AccountId, Block, Transaction};
use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

fn members(n: usize, byz: usize) -> Vec<Validator> {
    (0..n as u32)
        .map(|id| Validator {
            id,
            byzantine: (id as usize) < byz,
        })
        .collect()
}

proptest! {
    /// PBFT safety/liveness boundary: commits iff honest ≥ 2f + 1.
    #[test]
    fn pbft_quorum_boundary(n in 4usize..40, byz_frac in 0.0f64..1.0) {
        let byz = ((n as f64) * byz_frac) as usize;
        let mut shard = PbftShard::new(members(n, byz));
        let expected = (n - byz) >= shard.quorum();
        let out = shard.run_round();
        prop_assert_eq!(out.committed, expected, "n={} byz={} quorum={}", n, byz, shard.quorum());
    }

    /// Validator reshuffling conserves the population and keeps shard
    /// sizes within one of each other, at every epoch.
    #[test]
    fn reshuffle_conserves_and_balances(
        total in 8usize..120,
        shards in 1usize..8,
        epoch in 0u64..50,
    ) {
        prop_assume!(total >= shards);
        let mut set = ValidatorSet::new(total, total / 5, shards);
        set.reshuffle(epoch);
        let sizes: Vec<usize> = (0..shards as u32).map(|s| set.shard_members(s).len()).collect();
        prop_assert_eq!(sizes.iter().sum::<usize>(), total);
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?}");
    }

    /// Atomix atomicity: the outcome is commit iff every involved shard
    /// could commit both its rounds.
    #[test]
    fn atomix_atomicity(healthy in prop::collection::vec(any::<bool>(), 2..6)) {
        let mut shards: Vec<PbftShard> = healthy
            .iter()
            .map(|&ok| {
                if ok {
                    PbftShard::new(members(4, 0))
                } else {
                    PbftShard::new(members(4, 3)) // quorum-less
                }
            })
            .collect();
        let ids: Vec<u32> = (0..shards.len() as u32).collect();
        let out = AtomixProtocol::run(&mut shards, &ids);
        prop_assert_eq!(out.committed, healthy.iter().all(|&h| h));
        prop_assert_eq!(out.rounds as usize, 2 * healthy.len());
    }

    /// The engine conserves transactions: committed + aborted equals the
    /// number fed in, for arbitrary small traffic patterns.
    #[test]
    fn engine_conserves_transactions(pairs in prop::collection::vec((0u64..20, 0u64..20), 1..40)) {
        let mut g = TxGraph::new();
        let txs: Vec<Transaction> = pairs
            .iter()
            .map(|&(a, b)| Transaction::transfer(AccountId(a), AccountId(b)))
            .collect();
        let n_txs = txs.len() as u64;
        let block = Block::new(0, txs);
        g.ingest_block(&block);
        let labels: Vec<u32> = (0..g.node_count() as u32).map(|v| v % 3).collect();
        let alloc = Allocation::new(labels, 3);
        let mut engine = ChainEngine::new(ChainEngineConfig {
            shards: 3,
            validators: 12,
            byzantine: 0,
            batch_size: 8,
            reshuffle_interval: 0,
        });
        engine.process_block(&block, &g, &alloc);
        let r = engine.report();
        prop_assert_eq!(r.intra_committed + r.cross_committed + r.aborted, n_txs);
        prop_assert_eq!(r.aborted, 0, "no faults configured");
        prop_assert!(r.total_messages > 0);
    }
}

fn small_trace(seed: u64, blocks: u64) -> Vec<Block> {
    let cfg = WorkloadConfig {
        accounts: 300,
        transactions: 10_000,
        block_size: 25,
        groups: 12,
        new_account_prob: 0.01,
        drift_interval: 15,
        ..WorkloadConfig::default()
    };
    EthereumLikeGenerator::new(cfg, seed).blocks(blocks)
}

fn faulty_config(shards: usize, threads: usize) -> ChainServiceConfig {
    ChainServiceConfig {
        engine: ChainEngineConfig {
            shards,
            validators: shards * 8,
            byzantine: 0,
            batch_size: 16,
            reshuffle_interval: 0,
        },
        epoch_blocks: 10,
        schedule: HybridSchedule::Hybrid { global_gap: 2 },
        threads,
        ..ChainServiceConfig::new(shards)
    }
}

fn faulty_service(shards: usize, fault_seed: u64) -> ChainService {
    // Env-default thread count: the CI matrix re-runs this whole suite at
    // TXALLO_THREADS=1 and =4, and every property must hold unchanged.
    let threads = txallo_graph::par::threads_from_env();
    let mut service = ChainService::new(faulty_config(shards, threads));
    service.set_fault_plan(FaultPlan::mixed(fault_seed));
    service
}

proptest! {
    // The end-to-end resume property drives two full chain services per
    // case; keep the case count modest so the suite stays quick.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// §IV-A determinism across restarts: crashing at *any* epoch
    /// boundary and resuming from the checkpoint yields a run
    /// bit-identical to the uninterrupted one — same labels, same
    /// substrate report — even with fault injection active.
    #[test]
    fn crash_at_any_epoch_resumes_bit_identically(
        crash_after in 1u64..5,
        workload_seed in 0u64..500,
        fault_seed in 0u64..500,
    ) {
        let warm = small_trace(workload_seed, 90);
        let (warmup, live) = warm.split_at(40);

        let mut reference = faulty_service(3, fault_seed);
        reference.warmup(warmup);
        let reference_updates = reference.run(live);

        let mut crashed = faulty_service(3, fault_seed);
        crashed.warmup(warmup);
        let crash_block = (crash_after * 10) as usize;
        let before = crashed.run(&live[..crash_block]);
        prop_assert_eq!(crashed.epochs_closed(), crash_after);
        let image = crashed.checkpoint().expect("boundary checkpoint");
        drop(crashed);

        let mut resumed = ChainService::resume(
            faulty_config(3, txallo_graph::par::threads_from_env()),
            &image,
        )
        .expect("resume");
        let after = resumed.run(&live[crash_block..]);

        prop_assert_eq!(before.len() + after.len(), reference_updates.len());
        for (i, (live_u, split_u)) in reference_updates
            .iter()
            .zip(before.iter().chain(after.iter()))
            .enumerate()
        {
            prop_assert_eq!(live_u.kind, split_u.kind, "epoch {}", i);
            prop_assert_eq!(live_u.migrations(), split_u.migrations(), "epoch {}", i);
        }
        prop_assert_eq!(
            reference.allocation().labels(),
            resumed.allocation().labels(),
            "restart must not perturb the served mapping"
        );
        prop_assert_eq!(
            format!("{:?}", reference.report()),
            format!("{:?}", resumed.report()),
            "substrate tallies (messages, retries, aborts) must survive the restart"
        );
    }

    /// Checkpoints are thread-count neutral: the image deliberately does
    /// not record the sweep worker count (a pure performance knob), so a
    /// checkpoint written by an `N`-thread service must resume under `M`
    /// threads bit-identically to an uninterrupted *serial* run — same
    /// update kinds and migrations, same final mapping, same substrate
    /// tallies — with fault injection active throughout.
    #[test]
    fn checkpoint_crosses_thread_counts_bit_identically(
        crash_after in 1u64..4,
        workload_seed in 0u64..500,
        fault_seed in 0u64..500,
        write_threads in 2usize..5,
        resume_threads in 1usize..5,
    ) {
        let warm = small_trace(workload_seed, 80);
        let (warmup, live) = warm.split_at(40);

        // Uninterrupted serial reference.
        let mut reference = ChainService::new(faulty_config(3, 1));
        reference.set_fault_plan(FaultPlan::mixed(fault_seed));
        reference.warmup(warmup);
        let reference_updates = reference.run(live);

        // N-thread run up to the crash point, checkpoint at the boundary.
        let mut crashed = ChainService::new(faulty_config(3, write_threads));
        crashed.set_fault_plan(FaultPlan::mixed(fault_seed));
        crashed.warmup(warmup);
        let crash_block = (crash_after * 10) as usize;
        let before = crashed.run(&live[..crash_block]);
        let image = crashed.checkpoint().expect("boundary checkpoint");
        drop(crashed);

        // M-thread resume from the N-thread image.
        let mut resumed =
            ChainService::resume(faulty_config(3, resume_threads), &image).expect("resume");
        let after = resumed.run(&live[crash_block..]);

        prop_assert_eq!(before.len() + after.len(), reference_updates.len());
        for (i, (live_u, split_u)) in reference_updates
            .iter()
            .zip(before.iter().chain(after.iter()))
            .enumerate()
        {
            prop_assert_eq!(live_u.kind, split_u.kind, "epoch {}", i);
            prop_assert_eq!(live_u.migrations(), split_u.migrations(), "epoch {}", i);
        }
        prop_assert_eq!(
            reference.allocation().labels(),
            resumed.allocation().labels(),
            "{}-thread checkpoint resumed at {} threads must serve the serial mapping",
            write_threads,
            resume_threads
        );
        prop_assert_eq!(
            format!("{:?}", reference.report()),
            format!("{:?}", resumed.report()),
            "substrate tallies must match the serial run across the thread switch"
        );
    }
}

proptest! {
    /// Atomix atomicity under arbitrary drop/duplication patterns: both
    /// phases always run in every involved shard (no partial commit), a
    /// quorum-less shard forces a global abort no matter what the network
    /// does, and the same fault seed replays to the same outcome.
    #[test]
    fn atomix_atomicity_under_any_drop_pattern(
        fault_seed in any::<u64>(),
        drop_rate in 0.0f64..0.6,
        duplicate_rate in 0.0f64..0.4,
        healthy in prop::collection::vec(any::<bool>(), 2..5),
    ) {
        let plan = FaultPlan {
            seed: fault_seed,
            drop_rate,
            delay_rate: 0.1,
            duplicate_rate,
            max_retries: 2,
            crash_rate: 0.0,
            rejoin_after: 0,
        };
        let build = || -> Vec<PbftShard> {
            healthy
                .iter()
                .map(|&ok| {
                    if ok {
                        PbftShard::new(members(4, 0))
                    } else {
                        PbftShard::new(members(4, 3)) // quorum-less
                    }
                })
                .collect()
        };
        let ids: Vec<u32> = (0..healthy.len() as u32).collect();

        let mut shards = build();
        let mut inj = FaultInjector::new(plan);
        let out = AtomixProtocol::run_faulty(&mut shards, &ids, &mut inj);

        // Atomicity: the unlock/commit phase runs everywhere even after
        // an abort decision, so every shard always executes both rounds.
        prop_assert_eq!(out.rounds as usize, 2 * healthy.len());
        if !healthy.iter().all(|&h| h) {
            prop_assert!(!out.committed, "a quorum-less shard can never lock");
        }
        if out.committed {
            prop_assert!(healthy.iter().all(|&h| h), "commit implies every lock succeeded");
        }
        // Bounded recovery: each consensus round and the proof relay
        // retry at most `max_retries` times.
        prop_assert!(out.retries <= (out.rounds + healthy.len() as u32) * plan.max_retries);

        // Determinism: replaying the same plan over fresh shards gives
        // the identical outcome and draw count.
        let mut shards2 = build();
        let mut inj2 = FaultInjector::new(plan);
        let out2 = AtomixProtocol::run_faulty(&mut shards2, &ids, &mut inj2);
        prop_assert_eq!(out, out2);
        prop_assert_eq!(inj.counter(), inj2.counter());
    }
}
