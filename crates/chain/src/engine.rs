//! The chain engine: applies an allocation, drives per-shard consensus and
//! cross-shard Atomix over a block stream, and *measures* η.
//!
//! Reallocation reaches the consensus substrate through
//! [`ChainEngine::apply_reallocation`]: each epoch's
//! [`AllocationUpdate`] move-diff is executed as batched cross-shard
//! state transfers over Atomix (lock the account on the source shard,
//! commit on the destination), so migration is a *measured* cost, not a
//! free relabel. The epoch loop itself lives in
//! [`ChainService`](crate::ChainService).

use txallo_core::{Allocation, AllocationUpdate};
use txallo_graph::TxGraph;
use txallo_model::{Block, FxHashMap};

use crate::atomix::AtomixProtocol;
use crate::pbft::PbftShard;
use crate::validator::ValidatorSet;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ChainEngineConfig {
    /// Number of shards `k`.
    pub shards: usize,
    /// Total validators across all shards.
    pub validators: usize,
    /// Byzantine validators among them.
    pub byzantine: usize,
    /// Intra-shard transactions batched per consensus round.
    pub batch_size: usize,
    /// Reshuffle the validator assignment every this many blocks
    /// (Elastico-style reconfiguration; §II-B).
    pub reshuffle_interval: u64,
}

impl ChainEngineConfig {
    /// A reasonable default: `k` shards, 16 validators each, 10% Byzantine,
    /// 64-transaction batches, reshuffle every 100 blocks.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            validators: shards * 16,
            byzantine: shards * 16 / 10,
            batch_size: 64,
            reshuffle_interval: 100,
        }
    }
}

/// Aggregated statistics of an engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Blocks processed.
    pub blocks: u64,
    /// Committed intra-shard transactions.
    pub intra_committed: u64,
    /// Committed cross-shard transactions.
    pub cross_committed: u64,
    /// Aborted (failed-quorum) transactions of either kind.
    pub aborted: u64,
    /// Total consensus/relay messages.
    pub total_messages: u64,
    /// Validator reshuffles performed.
    pub reshuffles: u64,
    /// Accounts migrated between shards by reallocation updates.
    pub migrations: u64,
    /// Atomix messages spent on those migrations (also counted in
    /// `total_messages`).
    pub migration_messages: u64,
    /// Mean per-shard message cost of an intra transaction.
    pub intra_cost_per_shard: f64,
    /// Mean per-shard message cost of a cross transaction.
    pub cross_cost_per_shard: f64,
}

impl EngineReport {
    /// The measured workload ratio `η` = cross cost / intra cost per shard
    /// — the empirical counterpart of the paper's hyper-parameter.
    pub fn measured_eta(&self) -> f64 {
        if self.intra_cost_per_shard <= 0.0 {
            return 0.0;
        }
        self.cross_cost_per_shard / self.intra_cost_per_shard
    }
}

/// The deterministic sharded-chain engine.
#[derive(Debug)]
pub struct ChainEngine {
    config: ChainEngineConfig,
    validators: ValidatorSet,
    instances: Vec<PbftShard>,
    report: EngineReport,
    // Work accumulators for the η measurement.
    intra_shard_tx_units: f64,
    intra_messages: f64,
    cross_shard_tx_units: f64,
    cross_messages: f64,
}

impl ChainEngine {
    /// Builds the engine (validators are assigned for epoch 0).
    pub fn new(config: ChainEngineConfig) -> Self {
        let validators = ValidatorSet::new(config.validators, config.byzantine, config.shards);
        let instances = Self::build_instances(&validators, config.shards);
        Self {
            config,
            validators,
            instances,
            report: EngineReport::default(),
            intra_shard_tx_units: 0.0,
            intra_messages: 0.0,
            cross_shard_tx_units: 0.0,
            cross_messages: 0.0,
        }
    }

    fn build_instances(validators: &ValidatorSet, shards: usize) -> Vec<PbftShard> {
        (0..shards as u32)
            .map(|s| PbftShard::new(validators.shard_members(s)))
            .collect()
    }

    /// Current validator assignment.
    pub fn validators(&self) -> &ValidatorSet {
        &self.validators
    }

    /// Processes one block's transactions under `allocation`.
    pub fn process_block(&mut self, block: &Block, graph: &TxGraph, allocation: &Allocation) {
        if self.config.reshuffle_interval > 0
            && block
                .height()
                .is_multiple_of(self.config.reshuffle_interval)
            && block.height() > 0
        {
            let epoch = block.height() / self.config.reshuffle_interval;
            self.validators.reshuffle(epoch);
            self.instances = Self::build_instances(&self.validators, self.config.shards);
            self.report.reshuffles += 1;
        }

        // Partition the block: intra batches per shard; cross grouped by
        // their exact shard set (real deployments batch Atomix by shard
        // pair, which is what keeps η near 2 instead of 2×batch size).
        let mut intra: Vec<Vec<u32>> = vec![Vec::new(); self.config.shards]; // tx counts only
        let mut cross: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        let mut scratch: Vec<u32> = Vec::with_capacity(8);
        for tx in block.transactions() {
            scratch.clear();
            for account in tx.account_set() {
                let node = graph
                    .node_of(account)
                    .expect("accounts ingested before processing");
                scratch.push(allocation.shard_of(node).0);
            }
            scratch.sort_unstable();
            scratch.dedup();
            if scratch.len() == 1 {
                intra[scratch[0] as usize].push(0);
            } else {
                *cross.entry(scratch.clone()).or_insert(0) += 1;
            }
        }

        // Intra: per shard, ceil(n/batch) consensus rounds.
        for (shard, txs) in intra.iter().enumerate() {
            let n = txs.len() as u64;
            if n == 0 {
                continue;
            }
            let batch = self.config.batch_size.max(1) as u64;
            let rounds = n.div_ceil(batch);
            let mut remaining = n;
            for _ in 0..rounds {
                let in_round = remaining.min(batch);
                remaining -= in_round;
                let out = self.instances[shard].run_round();
                self.report.total_messages += out.messages;
                if out.committed {
                    self.report.intra_committed += in_round;
                } else {
                    self.report.aborted += in_round;
                }
                // Each tx in the round is charged its share of one shard's
                // round cost.
                self.intra_shard_tx_units += in_round as f64;
                self.intra_messages += out.messages as f64;
            }
        }

        // Cross: one Atomix run per (shard set, batch).
        let mut groups: Vec<(Vec<u32>, u64)> = cross.into_iter().collect();
        groups.sort_unstable(); // determinism
        for (shards, count) in groups {
            let batch = self.config.batch_size.max(1) as u64;
            let runs = count.div_ceil(batch);
            let mut remaining = count;
            for _ in 0..runs {
                let in_run = remaining.min(batch);
                remaining -= in_run;
                let out = AtomixProtocol::run(&mut self.instances, &shards);
                self.report.total_messages += out.messages;
                if out.committed {
                    self.report.cross_committed += in_run;
                } else {
                    self.report.aborted += in_run;
                }
                // A cross tx occupies µ shards; charge per shard-tx unit.
                self.cross_shard_tx_units += (in_run * shards.len() as u64) as f64;
                self.cross_messages += out.messages as f64;
            }
        }

        self.report.blocks += 1;
    }

    /// Executes an epoch's reallocation diff on the substrate: every
    /// account migration is a cross-shard state transfer between its old
    /// and new shard, batched per (from, to) pair and run through Atomix
    /// exactly like a cross-shard transaction batch. First placements
    /// (no previous shard) cost nothing — there is no state to move.
    pub fn apply_reallocation(&mut self, update: &AllocationUpdate) {
        let mut pairs: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for m in &update.moves {
            let Some(from) = m.from else { continue };
            if from == m.to {
                continue;
            }
            *pairs.entry((from.0, m.to.0)).or_insert(0) += 1;
        }
        let mut pairs: Vec<((u32, u32), u64)> = pairs.into_iter().collect();
        pairs.sort_unstable(); // determinism
        let batch = self.config.batch_size.max(1) as u64;
        for ((from, to), count) in pairs {
            self.report.migrations += count;
            let shards = if from < to { [from, to] } else { [to, from] };
            let runs = count.div_ceil(batch);
            for _ in 0..runs {
                let out = AtomixProtocol::run(&mut self.instances, &shards);
                self.report.total_messages += out.messages;
                self.report.migration_messages += out.messages;
            }
        }
    }

    /// Finalizes and returns the report.
    pub fn report(&self) -> EngineReport {
        let mut r = self.report.clone();
        r.intra_cost_per_shard = if self.intra_shard_tx_units > 0.0 {
            self.intra_messages / self.intra_shard_tx_units
        } else {
            0.0
        };
        r.cross_cost_per_shard = if self.cross_shard_tx_units > 0.0 {
            self.cross_messages / self.cross_shard_tx_units
        } else {
            0.0
        };
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_core::{AllocatorRegistry, Dataset, TxAlloParams};
    use txallo_graph::WeightedGraph;
    use txallo_model::{AccountId, Transaction};
    use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

    fn engine(shards: usize) -> ChainEngine {
        ChainEngine::new(ChainEngineConfig {
            shards,
            validators: shards * 8,
            byzantine: 0,
            batch_size: 16,
            reshuffle_interval: 10,
        })
    }

    #[test]
    fn processes_a_simple_block() {
        let mut g = TxGraph::new();
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(1), AccountId(2)),
                Transaction::transfer(AccountId(3), AccountId(4)),
            ],
        );
        g.ingest_block(&block);
        let mut labels = vec![0u32; g.node_count()];
        labels[g.node_of(AccountId(3)).unwrap() as usize] = 1;
        labels[g.node_of(AccountId(4)).unwrap() as usize] = 1;
        let alloc = Allocation::new(labels, 2);
        let mut e = engine(2);
        e.process_block(&block, &g, &alloc);
        let r = e.report();
        assert_eq!(r.intra_committed, 2);
        assert_eq!(r.cross_committed, 0);
        assert_eq!(r.aborted, 0);
        assert!(r.total_messages > 0);
    }

    #[test]
    fn cross_transactions_cost_more_per_shard() {
        let mut g = TxGraph::new();
        let mut txs = Vec::new();
        // 16 intra on shard 0, 16 cross between shards 0 and 1.
        for i in 0..16u64 {
            txs.push(Transaction::transfer(
                AccountId(i * 2),
                AccountId(i * 2 + 1),
            ));
        }
        for i in 0..16u64 {
            txs.push(Transaction::transfer(AccountId(i * 2), AccountId(1000 + i)));
        }
        let block = Block::new(0, txs);
        g.ingest_block(&block);
        let labels: Vec<u32> = (0..g.node_count() as u32)
            .map(|v| if g.account(v).0 >= 1000 { 1 } else { 0 })
            .collect();
        let alloc = Allocation::new(labels, 2);
        let mut e = engine(2);
        e.process_block(&block, &g, &alloc);
        let r = e.report();
        assert_eq!(r.intra_committed, 16);
        assert_eq!(r.cross_committed, 16);
        let eta = r.measured_eta();
        assert!(
            eta > 1.0,
            "cross must cost more per shard, measured η = {eta}"
        );
        assert!(eta < 20.0, "η should stay in a sane band, measured {eta}");
    }

    #[test]
    fn reshuffle_happens_on_schedule() {
        let mut g = TxGraph::new();
        let mut e = engine(2);
        for h in 0..25u64 {
            let block = Block::new(
                h,
                vec![Transaction::transfer(AccountId(h), AccountId(h + 1))],
            );
            g.ingest_block(&block);
            let alloc = Allocation::new(vec![0; g.node_count()], 2);
            e.process_block(&block, &g, &alloc);
        }
        assert_eq!(e.report().reshuffles, 2, "blocks 10 and 20");
    }

    #[test]
    fn byzantine_minority_does_not_abort() {
        let mut g = TxGraph::new();
        let block = Block::new(0, vec![Transaction::transfer(AccountId(1), AccountId(2))]);
        g.ingest_block(&block);
        let alloc = Allocation::new(vec![0; 2], 1);
        let mut e = ChainEngine::new(ChainEngineConfig {
            shards: 1,
            validators: 16,
            byzantine: 5, // f = 5 for n = 16
            batch_size: 8,
            reshuffle_interval: 0,
        });
        e.process_block(&block, &g, &alloc);
        assert_eq!(e.report().intra_committed, 1);
        assert_eq!(e.report().aborted, 0);
    }

    #[test]
    fn measured_eta_on_real_workload_lands_in_paper_band() {
        // End-to-end: generate a trace, allocate with G-TxAllo, run the
        // chain engine, and check the measured η falls in the 2–10 range
        // the paper sweeps.
        let cfg = WorkloadConfig {
            accounts: 1_000,
            transactions: 10_000,
            block_size: 100,
            groups: 20,
            ..WorkloadConfig::default()
        };
        let mut generator = EthereumLikeGenerator::new(cfg, 13);
        let ledger = generator.default_ledger();
        let dataset = Dataset::from_ledger(ledger);
        let k = 4;
        let params = TxAlloParams::for_graph(dataset.graph(), k);
        let alloc = AllocatorRegistry::builtin()
            .batch("txallo", &params)
            .unwrap()
            .allocate(&dataset);
        let g = dataset.graph();
        let mut e = engine(k);
        for block in dataset.ledger().blocks() {
            e.process_block(block, g, &alloc);
        }
        let r = e.report();
        assert!(r.intra_committed > 0 && r.cross_committed > 0);
        let eta = r.measured_eta();
        assert!(
            (1.5..12.0).contains(&eta),
            "measured η = {eta} outside the paper's swept band"
        );
    }
}
