//! The chain engine: applies an allocation, drives per-shard consensus and
//! cross-shard Atomix over a block stream, and *measures* η.
//!
//! Reallocation reaches the consensus substrate through
//! [`ChainEngine::apply_reallocation`]: each epoch's
//! [`AllocationUpdate`] move-diff is executed as batched cross-shard
//! state transfers over Atomix (lock the account on the source shard,
//! commit on the destination), so migration is a *measured* cost, not a
//! free relabel. The epoch loop itself lives in
//! [`ChainService`](crate::ChainService).

use txallo_core::checkpoint::{Decoder, Encoder};
use txallo_core::{Allocation, AllocationUpdate, CheckpointError};
use txallo_graph::TxGraph;
use txallo_model::{Block, FxHashMap};

use crate::atomix::AtomixProtocol;
use crate::error::ChainError;
use crate::fault::{FaultInjector, FaultPlan};
use crate::pbft::PbftShard;
use crate::validator::{Validator, ValidatorSet};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ChainEngineConfig {
    /// Number of shards `k`.
    pub shards: usize,
    /// Total validators across all shards.
    pub validators: usize,
    /// Byzantine validators among them.
    pub byzantine: usize,
    /// Intra-shard transactions batched per consensus round.
    pub batch_size: usize,
    /// Reshuffle the validator assignment every this many blocks
    /// (Elastico-style reconfiguration; §II-B).
    pub reshuffle_interval: u64,
}

impl ChainEngineConfig {
    /// A reasonable default: `k` shards, 16 validators each, 10% Byzantine,
    /// 64-transaction batches, reshuffle every 100 blocks.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            validators: shards * 16,
            byzantine: shards * 16 / 10,
            batch_size: 64,
            reshuffle_interval: 100,
        }
    }
}

/// Aggregated statistics of an engine run.
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Blocks processed.
    pub blocks: u64,
    /// Committed intra-shard transactions.
    pub intra_committed: u64,
    /// Committed cross-shard transactions.
    pub cross_committed: u64,
    /// Aborted (failed-quorum) transactions of either kind.
    pub aborted: u64,
    /// Total consensus/relay messages.
    pub total_messages: u64,
    /// Validator reshuffles performed.
    pub reshuffles: u64,
    /// Accounts migrated between shards by reallocation updates.
    pub migrations: u64,
    /// Atomix messages spent on those migrations (also counted in
    /// `total_messages`).
    pub migration_messages: u64,
    /// Timeout-driven consensus retries (non-zero only under fault
    /// injection); their message/phase cost is in `total_messages`.
    pub retries: u64,
    /// Migration accounts whose Atomix batch aborted even after
    /// exhausting the fault plan's retry budget.
    pub migrations_aborted: u64,
    /// Validator-epochs lost to injected crashes (a validator down for
    /// one reshuffle epoch counts once).
    pub crash_outages: u64,
    /// Mean per-shard message cost of an intra transaction.
    pub intra_cost_per_shard: f64,
    /// Mean per-shard message cost of a cross transaction.
    pub cross_cost_per_shard: f64,
}

impl EngineReport {
    /// The measured workload ratio `η` = cross cost / intra cost per shard
    /// — the empirical counterpart of the paper's hyper-parameter.
    pub fn measured_eta(&self) -> f64 {
        if self.intra_cost_per_shard <= 0.0 {
            return 0.0;
        }
        self.cross_cost_per_shard / self.intra_cost_per_shard
    }
}

/// The deterministic sharded-chain engine.
#[derive(Debug)]
pub struct ChainEngine {
    config: ChainEngineConfig,
    validators: ValidatorSet,
    instances: Vec<PbftShard>,
    report: EngineReport,
    /// Installed fault regime; `None` is the exact fault-free fast path.
    fault: Option<FaultInjector>,
    // Work accumulators for the η measurement.
    intra_shard_tx_units: f64,
    intra_messages: f64,
    cross_shard_tx_units: f64,
    cross_messages: f64,
}

impl ChainEngine {
    /// Builds the engine (validators are assigned for epoch 0).
    ///
    /// # Panics
    /// Panics on the configurations [`ChainEngine::try_new`] rejects.
    pub fn new(config: ChainEngineConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ChainEngine::new`], returning a typed error on an invalid
    /// configuration (zero shards, empty shards, quorum-breaking
    /// Byzantine count).
    pub fn try_new(config: ChainEngineConfig) -> Result<Self, ChainError> {
        let validators = ValidatorSet::try_new(config.validators, config.byzantine, config.shards)?;
        let instances = Self::build_instances(&validators, config.shards);
        Ok(Self {
            config,
            validators,
            instances,
            report: EngineReport::default(),
            fault: None,
            intra_shard_tx_units: 0.0,
            intra_messages: 0.0,
            cross_shard_tx_units: 0.0,
            cross_messages: 0.0,
        })
    }

    /// Builds the engine with a fault regime installed from block 0.
    pub fn with_faults(config: ChainEngineConfig, plan: FaultPlan) -> Self {
        let mut engine = Self::new(config);
        engine.set_fault_plan(plan);
        engine
    }

    /// Installs (or clears, with [`FaultPlan::none`]) the fault regime
    /// and re-derives the shard instances, since the plan's crash
    /// schedule may silence validators in the current epoch.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = if plan.is_none() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
        self.rebuild_instances();
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|inj| inj.plan())
    }

    fn build_instances(validators: &ValidatorSet, shards: usize) -> Vec<PbftShard> {
        (0..shards as u32)
            .map(|s| PbftShard::new(validators.shard_members(s)))
            .collect()
    }

    /// Re-derives every shard instance from the current assignment,
    /// silencing validators the fault plan's crash schedule has down this
    /// epoch (a crashed validator is byzantine in the liveness sense:
    /// present in the membership, never voting).
    fn rebuild_instances(&mut self) {
        let epoch = self.validators.epoch();
        let mut outages = 0u64;
        self.instances = (0..self.config.shards as u32)
            .map(|s| {
                let members: Vec<Validator> = self
                    .validators
                    .shard_members(s)
                    .into_iter()
                    .map(|mut v| {
                        if let Some(inj) = &self.fault {
                            if !v.byzantine && inj.is_crashed(v.id, epoch) {
                                v.byzantine = true;
                                outages += 1;
                            }
                        }
                        v
                    })
                    .collect();
                PbftShard::new(members)
            })
            .collect();
        self.report.crash_outages += outages;
    }

    /// Current validator assignment.
    pub fn validators(&self) -> &ValidatorSet {
        &self.validators
    }

    /// Processes one block's transactions under `allocation`.
    pub fn process_block(&mut self, block: &Block, graph: &TxGraph, allocation: &Allocation) {
        if self.config.reshuffle_interval > 0
            && block
                .height()
                .is_multiple_of(self.config.reshuffle_interval)
            && block.height() > 0
        {
            let epoch = block.height() / self.config.reshuffle_interval;
            self.validators.reshuffle(epoch);
            self.rebuild_instances();
            self.report.reshuffles += 1;
        }

        // Partition the block: intra batches per shard; cross grouped by
        // their exact shard set (real deployments batch Atomix by shard
        // pair, which is what keeps η near 2 instead of 2×batch size).
        let mut intra: Vec<Vec<u32>> = vec![Vec::new(); self.config.shards]; // tx counts only
        let mut cross: FxHashMap<Vec<u32>, u64> = FxHashMap::default();
        let mut scratch: Vec<u32> = Vec::with_capacity(8);
        for tx in block.transactions() {
            scratch.clear();
            for account in tx.account_set() {
                let node = graph
                    .node_of(account)
                    .expect("accounts ingested before processing"); // txallo-lint: allow(lib-unwrap) — the engine ingests every block before routing it, so all accounts are interned
                scratch.push(allocation.shard_of(node).0);
            }
            scratch.sort_unstable();
            scratch.dedup();
            if scratch.len() == 1 {
                intra[scratch[0] as usize].push(0);
            } else {
                *cross.entry(scratch.clone()).or_insert(0) += 1;
            }
        }

        // Intra: per shard, ceil(n/batch) consensus rounds.
        for (shard, txs) in intra.iter().enumerate() {
            let n = txs.len() as u64;
            if n == 0 {
                continue;
            }
            let batch = self.config.batch_size.max(1) as u64;
            let rounds = n.div_ceil(batch);
            let mut remaining = n;
            for _ in 0..rounds {
                let in_round = remaining.min(batch);
                remaining -= in_round;
                let out = match self.fault.as_mut() {
                    Some(inj) => self.instances[shard].run_round_faulty(inj),
                    None => self.instances[shard].run_round(),
                };
                self.report.total_messages += out.messages;
                self.report.retries += out.retries as u64;
                if out.committed {
                    self.report.intra_committed += in_round;
                } else {
                    self.report.aborted += in_round;
                }
                // Each tx in the round is charged its share of one shard's
                // round cost.
                self.intra_shard_tx_units += in_round as f64;
                self.intra_messages += out.messages as f64;
            }
        }

        // Cross: one Atomix run per (shard set, batch).
        let mut groups: Vec<(Vec<u32>, u64)> = cross.into_iter().collect();
        groups.sort_unstable(); // determinism
        for (shards, count) in groups {
            let batch = self.config.batch_size.max(1) as u64;
            let runs = count.div_ceil(batch);
            let mut remaining = count;
            for _ in 0..runs {
                let in_run = remaining.min(batch);
                remaining -= in_run;
                let out = match self.fault.as_mut() {
                    Some(inj) => AtomixProtocol::run_faulty(&mut self.instances, &shards, inj),
                    None => AtomixProtocol::run(&mut self.instances, &shards),
                };
                self.report.total_messages += out.messages;
                self.report.retries += out.retries as u64;
                if out.committed {
                    self.report.cross_committed += in_run;
                } else {
                    self.report.aborted += in_run;
                }
                // A cross tx occupies µ shards; charge per shard-tx unit.
                self.cross_shard_tx_units += (in_run * shards.len() as u64) as f64;
                self.cross_messages += out.messages as f64;
            }
        }

        self.report.blocks += 1;
    }

    /// Executes an epoch's reallocation diff on the substrate: every
    /// account migration is a cross-shard state transfer between its old
    /// and new shard, batched per (from, to) pair and run through Atomix
    /// exactly like a cross-shard transaction batch. First placements
    /// (no previous shard) cost nothing — there is no state to move.
    pub fn apply_reallocation(&mut self, update: &AllocationUpdate) {
        let mut pairs: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for m in &update.moves {
            let Some(from) = m.from else { continue };
            if from == m.to {
                continue;
            }
            *pairs.entry((from.0, m.to.0)).or_insert(0) += 1;
        }
        let mut pairs: Vec<((u32, u32), u64)> = pairs.into_iter().collect();
        pairs.sort_unstable(); // determinism
        let batch = self.config.batch_size.max(1) as u64;
        let retry_budget = self
            .fault
            .as_ref()
            .map(|inj| inj.plan().max_retries)
            .unwrap_or(0);
        for ((from, to), count) in pairs {
            let shards = if from < to { [from, to] } else { [to, from] };
            let runs = count.div_ceil(batch);
            if self.fault.is_none() {
                self.report.migrations += count;
                for _ in 0..runs {
                    let out = AtomixProtocol::run(&mut self.instances, &shards);
                    self.report.total_messages += out.messages;
                    self.report.migration_messages += out.messages;
                }
                continue;
            }
            // Under faults a migration batch can abort; the whole Atomix
            // instance is re-run up to the plan's retry budget, and a
            // batch that still cannot commit stays on its source shard
            // (counted in `migrations_aborted`, never silently applied).
            let mut remaining = count;
            for _ in 0..runs {
                let in_run = remaining.min(batch);
                remaining -= in_run;
                let mut committed = false;
                for _ in 0..=retry_budget {
                    let inj = self.fault.as_mut().expect("fault path"); // txallo-lint: allow(lib-unwrap) — this loop only runs on the faulty branch, which is gated on fault.is_some() by the caller
                    let out = AtomixProtocol::run_faulty(&mut self.instances, &shards, inj);
                    self.report.total_messages += out.messages;
                    self.report.migration_messages += out.messages;
                    self.report.retries += out.retries as u64;
                    if out.committed {
                        committed = true;
                        break;
                    }
                }
                if committed {
                    self.report.migrations += in_run;
                } else {
                    self.report.migrations_aborted += in_run;
                }
            }
        }
    }

    /// Serializes the engine's resumable state: report counters, the η
    /// accumulators (raw bits — they are chronological float sums), the
    /// reshuffle epoch, per-shard view cursors, and the fault injector's
    /// plan + decision counter.
    pub fn export_state(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        let r = &self.report;
        for v in [
            r.blocks,
            r.intra_committed,
            r.cross_committed,
            r.aborted,
            r.total_messages,
            r.reshuffles,
            r.migrations,
            r.migration_messages,
            r.retries,
            r.migrations_aborted,
            r.crash_outages,
        ] {
            e.u64(v);
        }
        for v in [
            self.intra_shard_tx_units,
            self.intra_messages,
            self.cross_shard_tx_units,
            self.cross_messages,
        ] {
            e.f64(v);
        }
        e.u64(self.validators.epoch());
        e.u64(self.instances.len() as u64);
        for inst in &self.instances {
            e.u64(inst.view() as u64);
        }
        match &self.fault {
            None => e.u8(0),
            Some(inj) => {
                e.u8(1);
                let p = inj.plan();
                e.u64(p.seed);
                e.f64(p.drop_rate);
                e.f64(p.delay_rate);
                e.f64(p.duplicate_rate);
                e.u32(p.max_retries);
                e.f64(p.crash_rate);
                e.u64(p.rejoin_after);
                e.u64(inj.counter());
            }
        }
        e.finish()
    }

    /// Restores state exported by [`ChainEngine::export_state`] into an
    /// engine built from the same configuration; afterwards the engine
    /// behaves bit-identically to one that never stopped.
    pub fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut d = Decoder::new(bytes);
        let report = EngineReport {
            blocks: d.u64()?,
            intra_committed: d.u64()?,
            cross_committed: d.u64()?,
            aborted: d.u64()?,
            total_messages: d.u64()?,
            reshuffles: d.u64()?,
            migrations: d.u64()?,
            migration_messages: d.u64()?,
            retries: d.u64()?,
            migrations_aborted: d.u64()?,
            crash_outages: d.u64()?,
            intra_cost_per_shard: 0.0,
            cross_cost_per_shard: 0.0,
        };
        let intra_shard_tx_units = d.f64()?;
        let intra_messages = d.f64()?;
        let cross_shard_tx_units = d.f64()?;
        let cross_messages = d.f64()?;
        let epoch = d.u64()?;
        let instances = d.u64()? as usize;
        if instances != self.config.shards {
            return Err(CheckpointError::Malformed("engine shard-instance count"));
        }
        let views: Vec<u64> = (0..instances).map(|_| d.u64()).collect::<Result<_, _>>()?;
        let fault = match d.u8()? {
            0 => None,
            1 => {
                let plan = FaultPlan {
                    seed: d.u64()?,
                    drop_rate: d.f64()?,
                    delay_rate: d.f64()?,
                    duplicate_rate: d.f64()?,
                    max_retries: d.u32()?,
                    crash_rate: d.f64()?,
                    rejoin_after: d.u64()?,
                };
                Some(FaultInjector::restore(plan, d.u64()?))
            }
            _ => return Err(CheckpointError::Malformed("engine fault marker")),
        };
        d.finish()?;

        self.fault = fault;
        self.validators.reshuffle(epoch);
        self.rebuild_instances();
        for (inst, view) in self.instances.iter_mut().zip(views) {
            inst.restore_view(view as usize);
        }
        // The report is restored last: `rebuild_instances` charged this
        // epoch's crash outages, but the exported counters already
        // include them.
        self.report = report;
        self.intra_shard_tx_units = intra_shard_tx_units;
        self.intra_messages = intra_messages;
        self.cross_shard_tx_units = cross_shard_tx_units;
        self.cross_messages = cross_messages;
        Ok(())
    }

    /// Finalizes and returns the report.
    pub fn report(&self) -> EngineReport {
        let mut r = self.report.clone();
        r.intra_cost_per_shard = if self.intra_shard_tx_units > 0.0 {
            self.intra_messages / self.intra_shard_tx_units
        } else {
            0.0
        };
        r.cross_cost_per_shard = if self.cross_shard_tx_units > 0.0 {
            self.cross_messages / self.cross_shard_tx_units
        } else {
            0.0
        };
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_core::{AllocatorRegistry, Dataset, TxAlloParams};
    use txallo_graph::WeightedGraph;
    use txallo_model::{AccountId, Transaction};
    use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

    fn engine(shards: usize) -> ChainEngine {
        ChainEngine::new(ChainEngineConfig {
            shards,
            validators: shards * 8,
            byzantine: 0,
            batch_size: 16,
            reshuffle_interval: 10,
        })
    }

    #[test]
    fn processes_a_simple_block() {
        let mut g = TxGraph::new();
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(1), AccountId(2)),
                Transaction::transfer(AccountId(3), AccountId(4)),
            ],
        );
        g.ingest_block(&block);
        let mut labels = vec![0u32; g.node_count()];
        labels[g.node_of(AccountId(3)).unwrap() as usize] = 1;
        labels[g.node_of(AccountId(4)).unwrap() as usize] = 1;
        let alloc = Allocation::new(labels, 2);
        let mut e = engine(2);
        e.process_block(&block, &g, &alloc);
        let r = e.report();
        assert_eq!(r.intra_committed, 2);
        assert_eq!(r.cross_committed, 0);
        assert_eq!(r.aborted, 0);
        assert!(r.total_messages > 0);
    }

    #[test]
    fn cross_transactions_cost_more_per_shard() {
        let mut g = TxGraph::new();
        let mut txs = Vec::new();
        // 16 intra on shard 0, 16 cross between shards 0 and 1.
        for i in 0..16u64 {
            txs.push(Transaction::transfer(
                AccountId(i * 2),
                AccountId(i * 2 + 1),
            ));
        }
        for i in 0..16u64 {
            txs.push(Transaction::transfer(AccountId(i * 2), AccountId(1000 + i)));
        }
        let block = Block::new(0, txs);
        g.ingest_block(&block);
        let labels: Vec<u32> = (0..g.node_count() as u32)
            .map(|v| if g.account(v).0 >= 1000 { 1 } else { 0 })
            .collect();
        let alloc = Allocation::new(labels, 2);
        let mut e = engine(2);
        e.process_block(&block, &g, &alloc);
        let r = e.report();
        assert_eq!(r.intra_committed, 16);
        assert_eq!(r.cross_committed, 16);
        let eta = r.measured_eta();
        assert!(
            eta > 1.0,
            "cross must cost more per shard, measured η = {eta}"
        );
        assert!(eta < 20.0, "η should stay in a sane band, measured {eta}");
    }

    #[test]
    fn reshuffle_happens_on_schedule() {
        let mut g = TxGraph::new();
        let mut e = engine(2);
        for h in 0..25u64 {
            let block = Block::new(
                h,
                vec![Transaction::transfer(AccountId(h), AccountId(h + 1))],
            );
            g.ingest_block(&block);
            let alloc = Allocation::new(vec![0; g.node_count()], 2);
            e.process_block(&block, &g, &alloc);
        }
        assert_eq!(e.report().reshuffles, 2, "blocks 10 and 20");
    }

    #[test]
    fn byzantine_minority_does_not_abort() {
        let mut g = TxGraph::new();
        let block = Block::new(0, vec![Transaction::transfer(AccountId(1), AccountId(2))]);
        g.ingest_block(&block);
        let alloc = Allocation::new(vec![0; 2], 1);
        let mut e = ChainEngine::new(ChainEngineConfig {
            shards: 1,
            validators: 16,
            byzantine: 5, // f = 5 for n = 16
            batch_size: 8,
            reshuffle_interval: 0,
        });
        e.process_block(&block, &g, &alloc);
        assert_eq!(e.report().intra_committed, 1);
        assert_eq!(e.report().aborted, 0);
    }

    fn traffic_blocks(n: u64) -> (TxGraph, Vec<Block>) {
        let mut g = TxGraph::new();
        let blocks: Vec<Block> = (0..n)
            .map(|h| {
                let mut txs = Vec::new();
                for i in 0..6u64 {
                    txs.push(Transaction::transfer(
                        AccountId((h + i) % 9),
                        AccountId((h + i * 3) % 11 + 9),
                    ));
                }
                Block::new(h, txs)
            })
            .collect();
        for b in &blocks {
            g.ingest_block(b);
        }
        (g, blocks)
    }

    #[test]
    fn faulty_engine_is_deterministic_and_charges_protocol_cost() {
        use crate::fault::FaultPlan;
        let (g, blocks) = traffic_blocks(30);
        let alloc = Allocation::new(
            (0..txallo_graph::WeightedGraph::node_count(&g) as u32)
                .map(|v| v % 3)
                .collect(),
            3,
        );
        let plan = FaultPlan::mixed(21);
        let run = |plan: FaultPlan| {
            let mut e = ChainEngine::with_faults(
                ChainEngineConfig {
                    shards: 3,
                    validators: 24,
                    byzantine: 0,
                    batch_size: 4,
                    reshuffle_interval: 10,
                },
                plan,
            );
            for b in &blocks {
                e.process_block(b, &g, &alloc);
            }
            e.report()
        };
        let faulty = run(plan);
        let again = run(plan);
        assert_eq!(
            format!("{faulty:?}"),
            format!("{again:?}"),
            "bit-identical replays"
        );
        let clean = run(FaultPlan::none());
        assert!(faulty.retries > 0, "a mixed plan must force retries");
        assert!(
            faulty.total_messages > clean.total_messages,
            "faults are protocol cost, not free"
        );
        // Conservation holds under faults too.
        let total = 30 * 6;
        assert_eq!(
            faulty.intra_committed + faulty.cross_committed + faulty.aborted,
            total
        );
        assert_eq!(clean.aborted, 0);
    }

    #[test]
    fn export_import_resumes_bit_identically() {
        use crate::fault::FaultPlan;
        let (g, blocks) = traffic_blocks(40);
        let alloc = Allocation::new(
            (0..txallo_graph::WeightedGraph::node_count(&g) as u32)
                .map(|v| v % 2)
                .collect(),
            2,
        );
        let config = ChainEngineConfig {
            shards: 2,
            validators: 16,
            byzantine: 0,
            batch_size: 8,
            reshuffle_interval: 7,
        };
        let plan = FaultPlan::mixed(5);
        // Uninterrupted reference run.
        let mut full = ChainEngine::with_faults(config.clone(), plan);
        for b in &blocks {
            full.process_block(b, &g, &alloc);
        }
        // Crash after 20 blocks, export, import into a fresh engine.
        let mut first = ChainEngine::with_faults(config.clone(), plan);
        for b in &blocks[..20] {
            first.process_block(b, &g, &alloc);
        }
        let state = first.export_state();
        let mut resumed = ChainEngine::new(config);
        resumed.import_state(&state).unwrap();
        for b in &blocks[20..] {
            resumed.process_block(b, &g, &alloc);
        }
        assert_eq!(
            format!("{:?}", full.report()),
            format!("{:?}", resumed.report()),
            "resume must be indistinguishable from never stopping"
        );
        assert_eq!(full.fault_plan(), resumed.fault_plan());
    }

    #[test]
    fn corrupt_engine_state_is_a_typed_error() {
        let e = ChainEngine::new(ChainEngineConfig::new(2));
        let mut state = e.export_state();
        state.truncate(state.len() / 2);
        let mut fresh = ChainEngine::new(ChainEngineConfig::new(2));
        assert!(fresh.import_state(&state).is_err());
    }

    #[test]
    fn invalid_configurations_are_typed_errors() {
        use crate::error::ChainError;
        let bad = |shards, validators, byzantine| {
            ChainEngine::try_new(ChainEngineConfig {
                shards,
                validators,
                byzantine,
                batch_size: 8,
                reshuffle_interval: 0,
            })
            .unwrap_err()
        };
        assert_eq!(bad(0, 4, 0), ChainError::NoShards);
        assert!(matches!(bad(4, 2, 0), ChainError::NoValidators { .. }));
        assert!(matches!(bad(1, 4, 2), ChainError::QuorumViolation { .. }));
    }

    #[test]
    fn measured_eta_on_real_workload_lands_in_paper_band() {
        // End-to-end: generate a trace, allocate with G-TxAllo, run the
        // chain engine, and check the measured η falls in the 2–10 range
        // the paper sweeps.
        let cfg = WorkloadConfig {
            accounts: 1_000,
            transactions: 10_000,
            block_size: 100,
            groups: 20,
            ..WorkloadConfig::default()
        };
        let mut generator = EthereumLikeGenerator::new(cfg, 13);
        let ledger = generator.default_ledger();
        let dataset = Dataset::from_ledger(ledger);
        let k = 4;
        let params = TxAlloParams::for_graph(dataset.graph(), k);
        let alloc = AllocatorRegistry::builtin()
            .batch("txallo", &params)
            .unwrap()
            .allocate(&dataset);
        let g = dataset.graph();
        let mut e = engine(k);
        for block in dataset.ledger().blocks() {
            e.process_block(block, g, &alloc);
        }
        let r = e.report();
        assert!(r.intra_committed > 0 && r.cross_committed > 0);
        let eta = r.measured_eta();
        assert!(
            (1.5..12.0).contains(&eta),
            "measured η = {eta} outside the paper's swept band"
        );
    }
}
