//! Deterministic fault injection for the consensus substrate.
//!
//! The paper's determinism argument (§IV-A) only matters if it survives
//! failure: message loss in Atomix's lock/commit phases, PBFT round
//! timeouts, and validators crashing across reshuffle epochs. A
//! [`FaultPlan`] describes a failure regime; a [`FaultInjector`] turns it
//! into a *reproducible* decision stream — every drop/delay/duplication
//! draw comes from `mix64` over `(seed, decision counter)`, so the same
//! plan over the same event sequence yields the same faults, and the
//! counter can be checkpointed and restored mid-run without replaying.
//!
//! Crash schedules are deliberately *stateless*: whether validator `v` is
//! down at epoch `e` is a pure function of `(seed, v, e)`, so a service
//! that restarts from a checkpoint sees exactly the outages its peers see
//! without any crash bookkeeping in the checkpoint.

use txallo_model::hash::mix64;

use crate::validator::ValidatorId;

/// Domain-separation salts so distinct decision kinds never share a draw.
const SALT_DROP: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DELAY: u64 = 0xC2B2_AE3D_27D4_EB4F;
const SALT_DUPLICATE: u64 = 0x1656_67B1_9E37_79F9;
const SALT_CRASH: u64 = 0x2545_F491_4F6C_DD1D;

/// A seeded description of the failure regime to inject.
///
/// All rates are probabilities in `[0, 1]`; a rate of zero disables that
/// fault class entirely (and consumes no draws, so adding a disabled
/// class never perturbs the others).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// Probability a protocol message round is lost, forcing a timeout
    /// and (bounded) retry.
    pub drop_rate: f64,
    /// Probability a round is delayed one extra timeout-length phase
    /// (latency cost only; no progress is lost).
    pub delay_rate: f64,
    /// Probability a broadcast is duplicated (extra messages on the
    /// wire; harmless to safety, counted as protocol cost).
    pub duplicate_rate: f64,
    /// Retries allowed after a dropped round before the batch aborts.
    pub max_retries: u32,
    /// Per-epoch probability that a validator crashes at that epoch.
    pub crash_rate: f64,
    /// Epochs a crashed validator stays down *after* its crash epoch
    /// (it is silent for `rejoin_after + 1` epochs, then rejoins).
    pub rejoin_after: u64,
}

impl FaultPlan {
    /// The fault-free plan: every rate zero, nothing injected.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            duplicate_rate: 0.0,
            max_retries: 0,
            crash_rate: 0.0,
            rejoin_after: 0,
        }
    }

    /// A moderate mixed-failure regime under `seed`: 5% drops with up to
    /// 3 retries, 5% delays, 5% duplicates, 2% per-epoch crashes with a
    /// 2-epoch rejoin window.
    pub fn mixed(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.05,
            delay_rate: 0.05,
            duplicate_rate: 0.05,
            max_retries: 3,
            crash_rate: 0.02,
            rejoin_after: 2,
        }
    }

    /// Whether this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.drop_rate <= 0.0
            && self.delay_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.crash_rate <= 0.0
    }
}

/// Map a 64-bit draw to `[0, 1)` using its top 53 bits.
fn unit_from(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic decision stream over a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
    counter: u64,
}

impl FaultInjector {
    /// A fresh injector at decision 0.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, counter: 0 }
    }

    /// Rebuilds an injector mid-stream (checkpoint restore).
    pub fn restore(plan: FaultPlan, counter: u64) -> Self {
        Self { plan, counter }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decisions drawn so far — serialize this to resume the stream.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// One uniform draw in `[0, 1)`, advancing the decision counter.
    fn unit(&mut self, salt: u64) -> f64 {
        let draw = mix64(self.plan.seed ^ mix64(self.counter ^ salt));
        self.counter = self.counter.wrapping_add(1);
        unit_from(draw)
    }

    /// Should the current message round be dropped?
    pub fn drop_message(&mut self) -> bool {
        self.plan.drop_rate > 0.0 && self.unit(SALT_DROP) < self.plan.drop_rate
    }

    /// Should the current round be delayed one timeout phase?
    pub fn delay_message(&mut self) -> bool {
        self.plan.delay_rate > 0.0 && self.unit(SALT_DELAY) < self.plan.delay_rate
    }

    /// Should the current broadcast be duplicated?
    pub fn duplicate_message(&mut self) -> bool {
        self.plan.duplicate_rate > 0.0 && self.unit(SALT_DUPLICATE) < self.plan.duplicate_rate
    }

    /// Whether `validator` is down at reshuffle `epoch` — a pure function
    /// of the plan, never of the decision counter, so it agrees across
    /// checkpoint/restore and across independent replicas.
    pub fn is_crashed(&self, validator: ValidatorId, epoch: u64) -> bool {
        if self.plan.crash_rate <= 0.0 {
            return false;
        }
        // A crash at epoch e keeps the validator down through
        // e + rejoin_after; scan the window of epochs whose crash would
        // still cover `epoch`.
        for back in 0..=self.plan.rejoin_after {
            let Some(e) = epoch.checked_sub(back) else {
                break;
            };
            let draw = mix64(
                self.plan.seed
                    ^ mix64(e ^ SALT_CRASH)
                    ^ mix64((validator as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ SALT_CRASH),
            );
            if unit_from(draw) < self.plan.crash_rate {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for _ in 0..100 {
            assert!(!inj.drop_message());
            assert!(!inj.delay_message());
            assert!(!inj.duplicate_message());
        }
        assert_eq!(inj.counter(), 0, "disabled classes consume no draws");
        assert!(!inj.is_crashed(3, 7));
    }

    #[test]
    fn decision_stream_is_deterministic() {
        let plan = FaultPlan::mixed(42);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for _ in 0..200 {
            assert_eq!(a.drop_message(), b.drop_message());
            assert_eq!(a.delay_message(), b.delay_message());
            assert_eq!(a.duplicate_message(), b.duplicate_message());
        }
        assert_eq!(a.counter(), b.counter());
    }

    #[test]
    fn restore_resumes_the_exact_stream() {
        let plan = FaultPlan::mixed(7);
        let mut full = FaultInjector::new(plan);
        let mut decisions = Vec::new();
        for _ in 0..50 {
            decisions.push(full.drop_message());
        }
        // Replay the first half, checkpoint, restore, replay the rest.
        let mut first = FaultInjector::new(plan);
        for d in decisions.iter().take(25) {
            assert_eq!(first.drop_message(), *d);
        }
        let mut resumed = FaultInjector::restore(plan, first.counter());
        for d in decisions.iter().skip(25) {
            assert_eq!(resumed.drop_message(), *d);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan {
            seed: 99,
            drop_rate: 0.3,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan);
        let fired = (0..10_000).filter(|_| inj.drop_message()).count();
        let rate = fired as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn crash_schedule_is_stateless_and_windowed() {
        let plan = FaultPlan {
            seed: 5,
            crash_rate: 0.2,
            rejoin_after: 2,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan);
        // Stateless: drawing messages must not perturb the schedule.
        let mut perturbed = FaultInjector::new(FaultPlan {
            drop_rate: 0.5,
            ..plan
        });
        for _ in 0..100 {
            let _ = perturbed.drop_message();
        }
        let mut any_crash = false;
        for id in 0..20u32 {
            for epoch in 0..50u64 {
                assert_eq!(inj.is_crashed(id, epoch), perturbed.is_crashed(id, epoch));
                any_crash |= inj.is_crashed(id, epoch);
            }
        }
        assert!(any_crash, "a 20% crash rate must fire somewhere");
        // Windowed: a crash epoch covers the following rejoin_after epochs.
        for id in 0..20u32 {
            for epoch in 0..50u64 {
                let crashed_now = {
                    let draw = mix64(
                        plan.seed
                            ^ mix64(epoch ^ SALT_CRASH)
                            ^ mix64((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ SALT_CRASH),
                    );
                    unit_from(draw) < plan.crash_rate
                };
                if crashed_now {
                    for w in 0..=plan.rejoin_after {
                        assert!(inj.is_crashed(id, epoch + w), "down through the window");
                    }
                }
            }
        }
    }
}
