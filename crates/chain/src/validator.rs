//! Validators (miners) and their shard assignment / reshuffling.

use txallo_model::hash::mix64;

use crate::error::ChainError;

/// Globally unique validator id.
pub type ValidatorId = u32;

/// One consensus participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validator {
    /// Stable identity.
    pub id: ValidatorId,
    /// Whether the validator behaves Byzantine (silent in this model — it
    /// never votes; equivocation is strictly weaker against PBFT's quorum
    /// intersection, so silence is the worst case for liveness).
    pub byzantine: bool,
}

/// The full validator population with its current shard assignment.
///
/// Assignment is by deterministic pseudo-random permutation seeded from the
/// epoch (Elastico-style reshuffling, §II-B): every shard gets an equal
/// slice of a `mix64`-keyed shuffle, so Byzantine validators spread out
/// statistically and every shard has the same expected capacity.
#[derive(Debug, Clone)]
pub struct ValidatorSet {
    validators: Vec<Validator>,
    shard_of: Vec<u32>,
    shard_count: usize,
    epoch: u64,
}

impl ValidatorSet {
    /// Creates `total` validators, the first `byzantine` of which are
    /// faulty, split across `shard_count` shards at epoch 0.
    ///
    /// # Panics
    /// Panics on the configurations [`ValidatorSet::try_new`] rejects.
    pub fn new(total: usize, byzantine: usize, shard_count: usize) -> Self {
        Self::try_new(total, byzantine, shard_count).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ValidatorSet::new`], returning a typed error instead of
    /// panicking. Beyond the structural checks, a population whose
    /// Byzantine count breaks the `f < n/3` PBFT bound is rejected: with
    /// `byzantine·3 ≥ total`, even a perfectly even reshuffle leaves some
    /// shard below quorum, so the set is unsound by construction.
    pub fn try_new(total: usize, byzantine: usize, shard_count: usize) -> Result<Self, ChainError> {
        if shard_count == 0 {
            return Err(ChainError::NoShards);
        }
        if total < shard_count {
            return Err(ChainError::NoValidators {
                total,
                shards: shard_count,
            });
        }
        if byzantine > total {
            return Err(ChainError::TooManyFaults { byzantine, total });
        }
        if byzantine > 0 && byzantine * 3 >= total {
            return Err(ChainError::QuorumViolation {
                byzantine,
                total,
                shards: shard_count,
            });
        }
        Ok(Self::new_unchecked(total, byzantine, shard_count))
    }

    /// [`ValidatorSet::new`] without the quorum-soundness check — for
    /// tests and experiments that *want* an overwhelmed population (e.g.
    /// measuring liveness loss past `f`). Structural requirements (at
    /// least one shard, one validator per shard) still hold.
    pub fn new_unchecked(total: usize, byzantine: usize, shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert!(
            total >= shard_count,
            "need at least one validator per shard"
        );
        assert!(
            byzantine <= total,
            "cannot have more faults than validators"
        );
        let validators: Vec<Validator> = (0..total as u32)
            .map(|id| Validator {
                id,
                byzantine: (id as usize) < byzantine,
            })
            .collect();
        let mut set = Self {
            validators,
            shard_of: vec![0; total],
            shard_count,
            epoch: 0,
        };
        set.reshuffle(0);
        set
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Current reshuffle epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Deterministically reassigns every validator for `epoch`.
    pub fn reshuffle(&mut self, epoch: u64) {
        self.epoch = epoch;
        let n = self.validators.len();
        // Sort validator indices by a keyed hash — a deterministic
        // permutation that changes completely between epochs.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| mix64((i as u64) ^ mix64(epoch).rotate_left(17)));
        for (rank, &i) in order.iter().enumerate() {
            self.shard_of[i] = (rank % self.shard_count) as u32;
        }
    }

    /// The members of one shard.
    pub fn shard_members(&self, shard: u32) -> Vec<Validator> {
        self.validators
            .iter()
            .zip(self.shard_of.iter())
            .filter(|&(_, &s)| s == shard)
            .map(|(v, _)| *v)
            .collect()
    }

    /// Shard of a validator.
    pub fn shard_of(&self, id: ValidatorId) -> u32 {
        self.shard_of[id as usize]
    }

    /// Number of Byzantine members currently in `shard`.
    pub fn byzantine_in_shard(&self, shard: u32) -> usize {
        self.shard_members(shard)
            .iter()
            .filter(|v| v.byzantine)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shard_gets_a_fair_share() {
        let set = ValidatorSet::new(100, 0, 4);
        for shard in 0..4 {
            assert_eq!(set.shard_members(shard).len(), 25);
        }
    }

    #[test]
    fn uneven_division_spreads_remainder() {
        let set = ValidatorSet::new(10, 0, 3);
        let sizes: Vec<usize> = (0..3).map(|s| set.shard_members(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn reshuffle_is_deterministic_and_epoch_sensitive() {
        let mut a = ValidatorSet::new(40, 5, 4);
        let mut b = ValidatorSet::new(40, 5, 4);
        a.reshuffle(7);
        b.reshuffle(7);
        for id in 0..40u32 {
            assert_eq!(a.shard_of(id), b.shard_of(id));
        }
        b.reshuffle(8);
        let moved = (0..40u32)
            .filter(|&id| a.shard_of(id) != b.shard_of(id))
            .count();
        assert!(
            moved > 10,
            "a new epoch must reassign a large fraction, moved {moved}"
        );
    }

    #[test]
    fn byzantine_validators_spread_statistically() {
        // 1/5 Byzantine overall. Reshuffling cannot *guarantee* every shard
        // stays under f (that needs large shards — the point of §II-B's
        // sizing analysis); what it does guarantee is that faults do not
        // cluster: the average per-shard fault fraction tracks the global
        // rate and no shard gets a Byzantine majority.
        let mut set = ValidatorSet::new(200, 40, 8);
        for epoch in 0..10 {
            set.reshuffle(epoch);
            let mut total_faults = 0usize;
            for shard in 0..8 {
                let members = set.shard_members(shard).len();
                let faults = set.byzantine_in_shard(shard);
                total_faults += faults;
                assert!(
                    faults * 2 < members,
                    "epoch {epoch} shard {shard}: Byzantine majority {faults}/{members}"
                );
            }
            assert_eq!(total_faults, 40, "faults are conserved");
        }
    }

    #[test]
    #[should_panic(expected = "at least one validator per shard")]
    fn too_few_validators_panics() {
        let _ = ValidatorSet::new(2, 0, 3);
    }

    #[test]
    fn quorum_breaking_population_is_rejected() {
        // 2 of 4 Byzantine: f = 1 per the n/3 bound, so 2 is unsound.
        let err = ValidatorSet::try_new(4, 2, 1).unwrap_err();
        assert!(matches!(
            err,
            crate::error::ChainError::QuorumViolation { .. }
        ));
        // Exactly n/3 is still too many (f must be strictly < n/3).
        assert!(ValidatorSet::try_new(9, 3, 1).is_err());
        // Under the bound is fine, as is a fault-free set.
        assert!(ValidatorSet::try_new(10, 3, 1).is_ok());
        assert!(ValidatorSet::try_new(4, 0, 2).is_ok());
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn quorum_breaking_population_panics_via_new() {
        let _ = ValidatorSet::new(6, 2, 2);
    }

    #[test]
    fn unchecked_constructor_allows_overwhelmed_sets() {
        let set = ValidatorSet::new_unchecked(4, 3, 1);
        assert_eq!(set.byzantine_in_shard(0), 3);
    }
}
