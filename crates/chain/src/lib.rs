//! The sharded-blockchain substrate TxAllo runs on.
//!
//! The paper's model (§II-B, §III-A, §IV-A) presumes a permissionless
//! sharded chain with:
//!
//! * a **BFT consensus instance per shard** (PBFT-style; an intra-shard
//!   transaction commits in one 3-phase round);
//! * a **cross-shard atomic-commit protocol** (OmniLedger's client-driven
//!   Atomix: lock in every input shard, then commit/abort everywhere) —
//!   the reason a cross-shard transaction costs "an extra round of
//!   consensus" and motivates the workload parameter `η > 1`;
//! * **periodic miner reshuffling** to prevent single-shard take-over
//!   (Elastico-style), which is why every shard has statistically equal
//!   processing capacity `λ` — the assumption behind Eq. 3.
//!
//! This crate implements that substrate as a deterministic message-level
//! simulation. Beyond making the model concrete, it lets us *measure* `η`:
//! [`engine::ChainEngine`] tallies the per-shard work (consensus messages
//! and rounds) of intra vs cross transactions, and the
//! `experiments measure-eta` harness reports the observed ratio — landing
//! in the 2–10 band the paper sweeps.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod atomix;
pub mod engine;
pub mod error;
pub mod fault;
pub mod pbft;
pub mod service;
pub mod validator;

pub use atomix::{AtomixOutcome, AtomixProtocol};
pub use engine::{ChainEngine, ChainEngineConfig, EngineReport};
pub use error::ChainError;
pub use fault::{FaultInjector, FaultPlan};
pub use pbft::{ConsensusOutcome, PbftShard};
pub use service::{ChainService, ChainServiceConfig};
pub use validator::{Validator, ValidatorId, ValidatorSet};
