//! Per-shard PBFT-style consensus (message-level simulation).
//!
//! Each shard runs classic 3-phase PBFT (§IV-A cites its `O(N²)` message
//! complexity): the leader pre-prepares a batch, every honest replica
//! broadcasts `prepare`, then `commit`. A batch commits when at least
//! `2f + 1` of `n = 3f + 1` replicas are honest and vote. Byzantine
//! replicas are silent (worst case for liveness; safety is never violated
//! because we only count real votes).

use crate::fault::FaultInjector;
use crate::validator::Validator;

/// Outcome of one consensus round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsensusOutcome {
    /// Whether the batch reached a quorum and committed.
    pub committed: bool,
    /// Total protocol messages exchanged this round.
    pub messages: u64,
    /// Communication phases executed (3 on success path).
    pub phases: u32,
    /// Timeout-driven retries taken (always 0 on the fault-free path).
    pub retries: u32,
}

/// A single shard's consensus instance.
#[derive(Debug, Clone)]
pub struct PbftShard {
    members: Vec<Validator>,
    /// Round-robin leader cursor.
    view: usize,
}

impl PbftShard {
    /// Creates the instance over the shard's current membership.
    pub fn new(members: Vec<Validator>) -> Self {
        assert!(!members.is_empty(), "a shard needs validators");
        Self { members, view: 0 }
    }

    /// Number of replicas `n`.
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// Maximum tolerated faults `f = ⌊(n−1)/3⌋`.
    pub fn f(&self) -> usize {
        (self.n() - 1) / 3
    }

    /// Quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// The current leader.
    pub fn leader(&self) -> Validator {
        self.members[self.view % self.members.len()]
    }

    /// Honest replica count.
    pub fn honest(&self) -> usize {
        self.members.iter().filter(|v| !v.byzantine).count()
    }

    /// Runs one 3-phase round on a batch. A Byzantine leader proposes
    /// nothing (a view change rotates the leader and retries, costing an
    /// extra phase of `n` view-change messages each time, up to `n` tries).
    pub fn run_round(&mut self) -> ConsensusOutcome {
        let n = self.n() as u64;
        let mut messages = 0u64;
        let mut phases = 0u32;

        // Rotate past silent leaders (view change).
        let mut attempts = 0;
        while self.leader().byzantine && attempts < self.n() {
            messages += n; // view-change broadcast
            phases += 1;
            self.view += 1;
            attempts += 1;
        }
        if self.leader().byzantine {
            // Every replica is Byzantine: nothing can commit.
            return ConsensusOutcome {
                committed: false,
                messages,
                phases,
                retries: 0,
            };
        }

        // Pre-prepare: leader → all.
        messages += n - 1;
        phases += 1;
        // Prepare + commit: every honest replica broadcasts to all others.
        let honest = self.honest() as u64;
        messages += 2 * honest * (n - 1);
        phases += 2;

        let committed = self.honest() >= self.quorum();
        if committed {
            self.view += 1; // stable leader rotation per committed batch
        }
        ConsensusOutcome {
            committed,
            messages,
            phases,
            retries: 0,
        }
    }

    /// [`PbftShard::run_round`] under fault injection: after a round
    /// reaches quorum, the network may still duplicate the commit
    /// broadcast (extra messages), delay it one timeout phase, or lose it
    /// outright — a loss forces a view-change-priced timeout and a full
    /// retry round, bounded by the plan's `max_retries`, after which the
    /// batch aborts. Every cost lands in the outcome's message/phase
    /// tallies so faults are *protocol cost*, never free.
    pub fn run_round_faulty(&mut self, inj: &mut FaultInjector) -> ConsensusOutcome {
        let n = self.n() as u64;
        let mut messages = 0u64;
        let mut phases = 0u32;
        let mut retries = 0u32;
        loop {
            let out = self.run_round();
            messages += out.messages;
            phases += out.phases;
            if !out.committed {
                // Quorum failure: faults cannot resurrect it, no retry.
                return ConsensusOutcome {
                    committed: false,
                    messages,
                    phases,
                    retries,
                };
            }
            if inj.duplicate_message() {
                messages += n.saturating_sub(1); // duplicated broadcast
            }
            if inj.delay_message() {
                phases += 1; // timeout-length wait, nothing lost
            }
            if inj.drop_message() {
                // Lost commit certificate: timeout, view change, retry.
                messages += n;
                phases += 1;
                if retries >= inj.plan().max_retries {
                    return ConsensusOutcome {
                        committed: false,
                        messages,
                        phases,
                        retries,
                    };
                }
                retries += 1;
                continue;
            }
            return ConsensusOutcome {
                committed: true,
                messages,
                phases,
                retries,
            };
        }
    }

    /// The round-robin view cursor (for checkpointing).
    pub fn view(&self) -> usize {
        self.view
    }

    /// Restores the view cursor (checkpoint resume).
    pub fn restore_view(&mut self, view: usize) {
        self.view = view;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::ValidatorSet;

    fn shard_with(total: usize, byzantine: usize) -> PbftShard {
        let set = ValidatorSet::new(total, byzantine, 1);
        PbftShard::new(set.shard_members(0))
    }

    #[test]
    fn quorum_arithmetic() {
        let s = shard_with(4, 0);
        assert_eq!(s.f(), 1);
        assert_eq!(s.quorum(), 3);
        let s = shard_with(10, 0);
        assert_eq!(s.f(), 3);
        assert_eq!(s.quorum(), 7);
    }

    #[test]
    fn commits_with_f_faults() {
        // n = 4, f = 1: one Byzantine replica must not block commitment.
        let mut s = shard_with(4, 1);
        let out = s.run_round();
        assert!(out.committed);
        assert!(out.messages > 0);
    }

    #[test]
    fn stalls_beyond_f_faults() {
        // n = 4 with 2 Byzantine: quorum 3 > 2 honest → no commit. Such a
        // population is rejected by `ValidatorSet::new` (quorum bound), so
        // build it through the unchecked escape hatch.
        let set = ValidatorSet::new_unchecked(4, 2, 1);
        let mut s = PbftShard::new(set.shard_members(0));
        let out = s.run_round();
        assert!(!out.committed, "safety: no quorum, no commit");
    }

    #[test]
    fn faulty_round_retries_then_commits_or_aborts() {
        use crate::fault::{FaultInjector, FaultPlan};
        // A heavy drop rate with bounded retries: over many rounds we must
        // see both committed rounds with retries > 0 and aborted rounds
        // that exhausted the budget — each deterministically reproducible.
        let plan = FaultPlan {
            seed: 11,
            drop_rate: 0.4,
            max_retries: 2,
            ..FaultPlan::none()
        };
        let run = || {
            let mut inj = FaultInjector::new(plan);
            let mut outs = Vec::new();
            let mut s = shard_with(4, 0);
            for _ in 0..200 {
                outs.push(s.run_round_faulty(&mut inj));
            }
            outs
        };
        let outs = run();
        assert_eq!(outs, run(), "fault schedule must be deterministic");
        assert!(outs.iter().any(|o| o.committed && o.retries > 0));
        let aborted: Vec<_> = outs.iter().filter(|o| !o.committed).collect();
        assert!(
            !aborted.is_empty(),
            "a 0.4³ abort chance must fire in 200 rounds"
        );
        assert!(aborted.iter().all(|o| o.retries == plan.max_retries));
        // Retried rounds cost more than clean ones.
        let clean = outs.iter().find(|o| o.committed && o.retries == 0).unwrap();
        let retried = outs.iter().find(|o| o.committed && o.retries > 0).unwrap();
        assert!(retried.messages > clean.messages);
        assert!(retried.phases > clean.phases);
    }

    #[test]
    fn faultless_injector_matches_plain_rounds() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut inj = FaultInjector::new(FaultPlan::none());
        let mut a = shard_with(7, 2);
        let mut b = shard_with(7, 2);
        for _ in 0..10 {
            assert_eq!(a.run_round_faulty(&mut inj), b.run_round());
        }
        assert_eq!(inj.counter(), 0);
    }

    #[test]
    fn message_complexity_is_quadratic() {
        let m = |n: usize| shard_with(n, 0).run_round().messages;
        let m10 = m(10);
        let m20 = m(20);
        // Doubling n should roughly quadruple messages (2n(n−1) dominates).
        let ratio = m20 as f64 / m10 as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio} not ~4");
    }

    #[test]
    fn byzantine_leader_triggers_view_change() {
        // Validator 0 is Byzantine and (by construction of ValidatorSet)
        // the membership is permuted, so find a case where the leader is
        // faulty by building members directly.
        let members = vec![
            Validator {
                id: 0,
                byzantine: true,
            },
            Validator {
                id: 1,
                byzantine: false,
            },
            Validator {
                id: 2,
                byzantine: false,
            },
            Validator {
                id: 3,
                byzantine: false,
            },
        ];
        let mut s = PbftShard::new(members);
        assert!(s.leader().byzantine);
        let out = s.run_round();
        assert!(
            out.committed,
            "view change must route around the faulty leader"
        );
        assert!(out.phases > 3, "extra view-change phase must be counted");
    }

    #[test]
    fn all_byzantine_shard_never_commits() {
        let members: Vec<Validator> = (0..4)
            .map(|id| Validator {
                id,
                byzantine: true,
            })
            .collect();
        let mut s = PbftShard::new(members);
        let out = s.run_round();
        assert!(!out.committed);
    }

    #[test]
    fn leader_rotates_after_commit() {
        let mut s = shard_with(4, 0);
        let l1 = s.leader().id;
        s.run_round();
        let l2 = s.leader().id;
        assert_ne!(l1, l2, "leader must rotate between batches");
    }
}
