//! The epoch-driven chain service: consensus substrate + streaming
//! allocation in one loop.
//!
//! [`ChainService`] is the chain-side twin of the simulator's driver: it
//! owns the accumulated [`TxGraph`], a [`ChainEngine`] (per-shard PBFT +
//! cross-shard Atomix), and a [`StreamingAllocator`] resolved by name
//! through the [`AllocatorRegistry`]. Blocks flow through
//! [`ChainService::process_block`]; every `epoch_blocks` blocks the
//! service closes the epoch, *executes the reallocation diff on the
//! substrate* ([`ChainEngine::apply_reallocation`] — each migrated
//! account is a batched Atomix state transfer between its old and new
//! shard) and only then applies it to the serving mapping. Reallocation
//! is therefore a measured protocol cost, exactly like the transactions
//! it is supposed to save.

use txallo_core::checkpoint::{
    decode_checkpoint, encode_checkpoint, Decoder, Encoder, StreamState,
};
use txallo_core::{
    Allocation, AllocationUpdate, AllocatorRegistry, CheckpointError, Degradation, EpochKind,
    GlobalStream, HashAllocator, HybridSchedule, StateCarry, StreamingAllocator, TxAlloParams,
};
use txallo_graph::{TxGraph, WeightedGraph};
use txallo_model::Block;

use crate::engine::{ChainEngine, ChainEngineConfig, EngineReport};
use crate::error::ChainError;
use crate::fault::FaultPlan;

/// Configuration of the epoch-driven chain service.
#[derive(Debug, Clone)]
pub struct ChainServiceConfig {
    /// The consensus-substrate configuration.
    pub engine: ChainEngineConfig,
    /// Epoch length `τ₁` in blocks.
    pub epoch_blocks: usize,
    /// Allocation method, resolved through
    /// [`AllocatorRegistry::builtin`].
    pub method: String,
    /// TxAllo's global-refresh policy (ignored by schedule-free methods).
    pub schedule: HybridSchedule,
    /// Cross-shard workload parameter `η` of the allocation objective
    /// (the engine independently *measures* the realized η).
    pub eta: f64,
    /// Worker threads of the allocation sweep kernels (`1` = serial,
    /// `0` = one per core). Never changes an allocation — only how fast
    /// epochs close — and is deliberately not part of checkpoint images,
    /// so a checkpoint written under `N` threads resumes bit-identically
    /// under `M`. Defaults to the `TXALLO_THREADS` environment variable
    /// (unset = `1`).
    pub threads: usize,
}

impl ChainServiceConfig {
    /// Defaults mirroring [`ChainEngineConfig::new`]: `τ₁ = 100` blocks,
    /// TxAllo under the paper's 20-epoch hybrid gap, η = 2.
    pub fn new(shards: usize) -> Self {
        Self {
            engine: ChainEngineConfig::new(shards),
            epoch_blocks: 100,
            method: "txallo".to_string(),
            schedule: HybridSchedule::Hybrid { global_gap: 20 },
            eta: 2.0,
            threads: txallo_graph::par::threads_from_env(),
        }
    }
}

/// Stable wire code of a [`Degradation`] rung (checkpoint format).
fn degradation_code(d: Degradation) -> u8 {
    match d {
        Degradation::None => 0,
        Degradation::Invalidated => 1,
        Degradation::Rebuilt => 2,
        Degradation::HashFallback => 3,
    }
}

fn degradation_from_code(code: u8) -> Result<Degradation, ChainError> {
    Ok(match code {
        0 => Degradation::None,
        1 => Degradation::Invalidated,
        2 => Degradation::Rebuilt,
        3 => Degradation::HashFallback,
        _ => {
            return Err(ChainError::CorruptCheckpoint(CheckpointError::Malformed(
                "degradation rung",
            )))
        }
    })
}

/// The running service (see the [module docs](self)).
#[derive(Debug)]
pub struct ChainService {
    config: ChainServiceConfig,
    graph: TxGraph,
    engine: ChainEngine,
    stream: Box<dyn StreamingAllocator>,
    allocation: Allocation,
    blocks_in_epoch: usize,
    epochs_closed: u64,
    warmed_up: bool,
    /// Health-check period in epochs (0 = disabled).
    health_interval: u64,
    /// Maximum tolerated aggregate divergence before degrading.
    health_tolerance: f64,
    /// Current rung on the recovery ladder.
    degradation: Degradation,
    /// How the stream state crossed the last [`ChainService::resume`]
    /// (`None` until a resume happened).
    resume_carry: Option<StateCarry>,
}

impl ChainService {
    /// Builds the service.
    ///
    /// # Panics
    /// Panics on a structurally invalid configuration, including a
    /// `method` the builtin registry does not know.
    pub fn new(config: ChainServiceConfig) -> Self {
        Self::with_registry(config, &AllocatorRegistry::builtin())
    }

    /// [`ChainService::new`] with a caller-supplied registry.
    ///
    /// # Panics
    /// Panics where [`ChainService::try_with_registry`] errors.
    pub fn with_registry(config: ChainServiceConfig, registry: &AllocatorRegistry) -> Self {
        Self::try_with_registry(config, registry).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ChainService::new`]: every structurally invalid
    /// configuration — zero-block epochs, an unknown allocation method,
    /// an invalid validator population — is a typed [`ChainError`]
    /// instead of a panic.
    pub fn try_new(config: ChainServiceConfig) -> Result<Self, ChainError> {
        Self::try_with_registry(config, &AllocatorRegistry::builtin())
    }

    /// [`ChainService::try_new`] with a caller-supplied registry.
    pub fn try_with_registry(
        config: ChainServiceConfig,
        registry: &AllocatorRegistry,
    ) -> Result<Self, ChainError> {
        if config.epoch_blocks == 0 {
            return Err(ChainError::EmptyEpoch);
        }
        let shards = config.engine.shards;
        let params = TxAlloParams::for_total_weight(0.0, shards)
            .with_eta(config.eta)
            .with_threads(config.threads);
        let stream = registry.streaming(&config.method, &params, config.schedule)?;
        Ok(Self {
            engine: ChainEngine::try_new(config.engine.clone())?,
            config,
            graph: TxGraph::new(),
            stream,
            allocation: Allocation::new(Vec::new(), shards),
            blocks_in_epoch: 0,
            epochs_closed: 0,
            warmed_up: false,
            health_interval: 0,
            health_tolerance: 0.0,
            degradation: Degradation::None,
            resume_carry: None,
        })
    }

    /// Installs (or clears) a deterministic fault plan on the consensus
    /// substrate — see [`ChainEngine::set_fault_plan`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.engine.set_fault_plan(plan);
    }

    /// Enables the serving-state health check: every `interval_epochs`
    /// closed epochs, the stream's maintained aggregates are audited
    /// against a from-scratch recomputation
    /// ([`StreamingAllocator::consistency_error`]); a divergence above
    /// `tolerance` steps down the recovery ladder (see
    /// [`Degradation`]) — first invalidating the warm session, then, on
    /// repeated divergence, falling back to deterministic hash
    /// allocation so epochs keep closing.
    pub fn enable_health_check(&mut self, interval_epochs: u64, tolerance: f64) {
        self.health_interval = interval_epochs;
        self.health_tolerance = tolerance;
    }

    /// Ingests the historical prefix (not processed by consensus) and
    /// opens the allocation service on it.
    pub fn warmup(&mut self, blocks: &[Block]) {
        for b in blocks {
            self.graph.ingest_block(b);
        }
        let params = self.current_params();
        self.allocation = self.stream.begin(&self.graph, &params);
        self.warmed_up = true;
    }

    /// Processes one live block: ingest, let the allocation service
    /// observe it, run it through consensus under the *current* mapping,
    /// and — at an epoch boundary — close the epoch. Returns the epoch's
    /// [`AllocationUpdate`] when this block closed one.
    ///
    /// # Panics
    /// Panics if called before [`ChainService::warmup`].
    pub fn process_block(&mut self, block: &Block) -> Option<AllocationUpdate> {
        assert!(self.warmed_up, "call warmup() before process_block()");
        // The interned view hands the stream each transaction's dense node
        // ids straight from ingestion — no account re-hashing per epoch.
        let nodes = self.graph.ingest_block_nodes(block);
        self.stream.on_block_nodes(&self.graph, block, &nodes);
        // New accounts appear mid-epoch, before any boundary labels them:
        // consensus needs a shard *now*, so unlabelled accounts fall back
        // to their hash shard until the epoch closes (the same rule the
        // hash baseline uses for every account, applied transiently).
        self.extend_allocation_by_hash();
        self.engine
            .process_block(block, &self.graph, &self.allocation);

        self.blocks_in_epoch += 1;
        if self.blocks_in_epoch < self.config.epoch_blocks {
            return None;
        }
        self.blocks_in_epoch = 0;
        let update = self.stream.end_epoch(&self.graph, EpochKind::Scheduled);
        // The diff hits the substrate first (migrations are Atomix state
        // transfers), then the mapping. Accounts that arrived mid-epoch
        // were served — and committed state — on their transient hash
        // shard, so the stream's "placement" of such an account is a real
        // state transfer too: rewrite those moves with the transient
        // shard as the source before charging the substrate.
        let mut substrate = update.clone();
        for m in &mut substrate.moves {
            if m.from.is_none() && (m.node as usize) < self.allocation.len() {
                m.from = Some(self.allocation.shard_of(m.node));
            }
        }
        self.engine.apply_reallocation(&substrate);
        // The service's allocation holds those hash-fallback labels, so
        // it re-syncs from the stream rather than replaying the diff.
        self.allocation = self.stream.allocation();
        self.epochs_closed += 1;
        self.run_health_check();
        Some(update)
    }

    /// The epoch-boundary health audit and its recovery ladder.
    fn run_health_check(&mut self) {
        if self.health_interval == 0 || !self.epochs_closed.is_multiple_of(self.health_interval) {
            return;
        }
        let Some(err) = self.stream.consistency_error(&self.graph) else {
            return; // nothing maintained, nothing to diverge
        };
        if err <= self.health_tolerance {
            return;
        }
        if self.degradation < Degradation::Invalidated && self.stream.invalidate_state() {
            // First strike: drop the warm aggregates, keep the labels;
            // the next boundary rebuilds from the graph.
            self.degradation = Degradation::Invalidated;
            return;
        }
        // The rebuilt state diverged again (or there was nothing left to
        // invalidate): last rung, swap in deterministic hash allocation.
        // Epochs keep closing; quality is sacrificed, visibly.
        let params = self.current_params();
        let mut fallback = GlobalStream::new(
            "hash-fallback",
            params.clone(),
            Box::new(|g, p| HashAllocator::new(p.shards).allocate_graph(g)),
        );
        self.allocation = fallback.begin(&self.graph, &params);
        self.stream = Box::new(fallback);
        self.degradation = Degradation::HashFallback;
    }

    fn current_params(&self) -> TxAlloParams {
        TxAlloParams::for_graph(&self.graph, self.config.engine.shards)
            .with_eta(self.config.eta)
            .with_threads(self.config.threads)
    }

    /// Runs a whole block stream, returning the updates of every closed
    /// epoch.
    pub fn run(&mut self, blocks: &[Block]) -> Vec<AllocationUpdate> {
        blocks
            .iter()
            .filter_map(|b| self.process_block(b))
            .collect()
    }

    /// [`ChainService::run`] from a block *iterator*: each block is
    /// processed and dropped before the next is produced, so the chain
    /// can replay a synthesized ledger
    /// (`txallo_workload::StreamingWorkload`) of any length without ever
    /// materializing it.
    pub fn run_streamed<I>(&mut self, blocks: I) -> Vec<AllocationUpdate>
    where
        I: IntoIterator<Item = Block>,
    {
        blocks
            .into_iter()
            .filter_map(|b| self.process_block(&b))
            .collect()
    }

    fn extend_allocation_by_hash(&mut self) {
        let n = self.graph.node_count();
        let shards = self.allocation.shard_count();
        for v in self.allocation.len()..n {
            self.allocation
                .push_shard(self.graph.account(v as u32).hash_shard(shards));
        }
    }

    /// Serializes the whole resumable service state — graph, stream
    /// labels + aggregates, engine counters, degradation rung — into one
    /// versioned, checksummed image (see
    /// [`txallo_core::checkpoint`]).
    ///
    /// Checkpoints are only defined at epoch boundaries: mid-epoch the
    /// stream's touched-set and the engine's batch state are in flight
    /// and not serializable, so the call returns
    /// [`ChainError::MidEpochCheckpoint`] instead of a torn image.
    pub fn checkpoint(&self) -> Result<Vec<u8>, ChainError> {
        if !self.warmed_up {
            return Err(ChainError::NotWarmedUp);
        }
        if self.blocks_in_epoch != 0 {
            return Err(ChainError::MidEpochCheckpoint {
                blocks_into_epoch: self.blocks_in_epoch,
            });
        }
        // Streams without checkpoint support still get a labels-only
        // state: resume then rebuilds their internals from the graph.
        let stream_state = self.stream.export_state().unwrap_or_else(|| StreamState {
            epoch: self.epochs_closed,
            shards: self.config.engine.shards,
            labels: self.allocation.labels().to_vec(),
            community: None,
        });
        let engine_blob = self.engine.export_state();
        let mut consumer = Encoder::new();
        consumer.u64(self.epochs_closed);
        consumer.u8(degradation_code(self.degradation));
        consumer.u64(engine_blob.len() as u64);
        consumer.bytes(&engine_blob);
        Ok(encode_checkpoint(
            &self.graph,
            &stream_state,
            &consumer.finish(),
        ))
    }

    /// Reopens a service from a [`ChainService::checkpoint`] image under
    /// `config`, which must describe the same deployment (shard count is
    /// verified; the rest is the caller's contract, as with any restart).
    ///
    /// When the stream supports warm restore the resumed service is
    /// **bit-identical** to one that never stopped — same labels, same
    /// aggregates, same consensus counters, same fault-injection stream —
    /// and skips the global re-initialization entirely (the §V-B cost a
    /// cold start pays). Otherwise it degrades to a labels-only or cold
    /// resume and reports that through [`ChainService::resume_carry`].
    pub fn resume(config: ChainServiceConfig, image: &[u8]) -> Result<Self, ChainError> {
        Self::resume_with_registry(config, image, &AllocatorRegistry::builtin())
    }

    /// [`ChainService::resume`] with a caller-supplied registry.
    pub fn resume_with_registry(
        config: ChainServiceConfig,
        image: &[u8],
        registry: &AllocatorRegistry,
    ) -> Result<Self, ChainError> {
        let cp = decode_checkpoint(image)?;
        if cp.stream.shards != config.engine.shards {
            return Err(ChainError::ShardMismatch {
                expected: config.engine.shards,
                found: cp.stream.shards,
            });
        }
        let mut service = Self::try_with_registry(config, registry)?;

        let mut consumer = Decoder::new(&cp.consumer);
        let epochs_closed = consumer.u64().map_err(ChainError::CorruptCheckpoint)?;
        let degradation =
            degradation_from_code(consumer.u8().map_err(ChainError::CorruptCheckpoint)?)?;
        let engine_len = consumer.u64().map_err(ChainError::CorruptCheckpoint)? as usize;
        let engine_blob = consumer
            .bytes(engine_len)
            .map_err(ChainError::CorruptCheckpoint)?;
        service.engine.import_state(engine_blob)?;
        consumer.finish().map_err(ChainError::CorruptCheckpoint)?;

        service.graph = cp.graph;
        let params = service.current_params();
        if degradation == Degradation::HashFallback {
            // The run had already fallen back to hash allocation; resuming
            // onto the configured method would silently un-degrade it.
            service.stream = Box::new(GlobalStream::new(
                "hash-fallback",
                params.clone(),
                Box::new(|g, p| HashAllocator::new(p.shards).allocate_graph(g)),
            ));
        }
        let carry = match service
            .stream
            .import_state(&cp.stream, &service.graph, &params)
        {
            Some(carry) => {
                service.allocation = service.stream.allocation();
                carry
            }
            None => {
                // The stream cannot adopt checkpointed state (e.g. the
                // transaction-level scheduler): cold-open it on the
                // restored graph — a sound, visibly degraded resume.
                service.allocation = service.stream.begin(&service.graph, &params);
                StateCarry::Rebuilt
            }
        };
        service.blocks_in_epoch = 0;
        service.epochs_closed = epochs_closed;
        service.warmed_up = true;
        service.degradation = degradation;
        service.resume_carry = Some(carry);
        Ok(service)
    }

    /// The consensus-substrate report so far.
    pub fn report(&self) -> EngineReport {
        self.engine.report()
    }

    /// The current rung on the recovery ladder (see
    /// [`ChainService::enable_health_check`]).
    pub fn degradation(&self) -> Degradation {
        self.degradation
    }

    /// How stream state crossed the last [`ChainService::resume`]
    /// (`None` for a service that never resumed).
    pub fn resume_carry(&self) -> Option<StateCarry> {
        self.resume_carry
    }

    /// The current account-shard mapping.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// The accumulated transaction graph.
    pub fn graph(&self) -> &TxGraph {
        &self.graph
    }

    /// Epochs closed since warm-up.
    pub fn epochs_closed(&self) -> u64 {
        self.epochs_closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_core::UpdateKind;
    use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

    fn service_config(shards: usize, epoch_blocks: usize, gap: u64) -> ChainServiceConfig {
        ChainServiceConfig {
            engine: ChainEngineConfig {
                shards,
                validators: shards * 8,
                byzantine: 0,
                batch_size: 16,
                reshuffle_interval: 0,
            },
            epoch_blocks,
            schedule: HybridSchedule::Hybrid { global_gap: gap },
            ..ChainServiceConfig::new(shards)
        }
    }

    fn generator() -> EthereumLikeGenerator {
        let cfg = WorkloadConfig {
            accounts: 1_000,
            transactions: 30_000,
            block_size: 50,
            groups: 25,
            new_account_prob: 0.01,
            drift_interval: 20,
            ..WorkloadConfig::default()
        };
        EthereumLikeGenerator::new(cfg, 33)
    }

    #[test]
    fn epochs_close_and_migrations_hit_the_substrate() {
        let mut gen = generator();
        let mut service = ChainService::new(service_config(4, 10, 2));
        service.warmup(&gen.blocks(100));
        let updates = service.run(&gen.blocks(60));
        assert_eq!(updates.len(), 6);
        assert_eq!(service.epochs_closed(), 6);
        assert_eq!(
            updates[2].kind,
            UpdateKind::Global,
            "gap 2 fires at epoch 2"
        );

        let migrated: u64 = updates.iter().map(|u| u.migrations() as u64).sum();
        let r = service.report();
        // The substrate executes every diffed migration, plus the state
        // transfers of mid-epoch accounts leaving their transient hash
        // shard (the stream reports those as placements).
        assert!(
            r.migrations >= migrated,
            "substrate migrations {} must cover the {} diffed migrations",
            r.migrations,
            migrated
        );
        if migrated > 0 {
            assert!(
                r.migration_messages > 0,
                "migrations are not free: they cost Atomix messages"
            );
        }
        assert!(r.intra_committed + r.cross_committed > 0);
        // The served mapping covers every account.
        assert_eq!(service.allocation().len(), service.graph().node_count());
    }

    #[test]
    fn allocation_quality_beats_hash_on_structured_traffic() {
        // Epoch-driven TxAllo must yield fewer cross-shard commits than
        // the hash stream on the same trace — the §V-C claim, measured on
        // the consensus substrate itself.
        let cross_ratio = |method: &str| {
            let mut gen = generator();
            let mut config = service_config(4, 10, 2);
            config.method = method.into();
            let mut service = ChainService::new(config);
            service.warmup(&gen.blocks(100));
            service.run(&gen.blocks(40));
            let r = service.report();
            r.cross_committed as f64 / (r.cross_committed + r.intra_committed).max(1) as f64
        };
        let txallo = cross_ratio("txallo");
        let hash = cross_ratio("hash");
        assert!(
            txallo < hash,
            "txallo cross ratio {txallo} must beat hash {hash}"
        );
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn block_before_warmup_panics() {
        let mut gen = generator();
        let block = gen.blocks(1).pop().unwrap();
        let mut service = ChainService::new(ChainServiceConfig::new(2));
        let _ = service.process_block(&block);
    }

    /// An account that arrives mid-epoch is served on a transient hash
    /// shard; when `end_epoch` places it elsewhere, the substrate must
    /// charge that departure exactly once — the stream still reports it as
    /// a placement (`from: None`), and the engine's migration count equals
    /// `diffed migrations + placements that left their transient shard`,
    /// with no double counting on either side.
    #[test]
    fn transient_shard_departure_is_charged_exactly_once() {
        use txallo_model::{AccountId, Block, Transaction};
        let k = 4usize;
        let clique = |base: u64| -> Vec<Transaction> {
            let mut txs = Vec::new();
            for i in 0..5 {
                for j in (i + 1)..5 {
                    txs.push(Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
            txs
        };
        let warm: Vec<Block> = (0..4u64)
            .map(|h| Block::new(h, clique((h % 4) * 10)))
            .collect();
        let mut service = ChainService::new(service_config(k, 2, 1000));
        service.warmup(&warm);
        assert_eq!(service.report().migrations, 0, "warm-up is free");

        // One epoch (two blocks) with a burst of brand-new accounts bound
        // to existing cliques plus churn between cliques: a mix of
        // placements (some leaving their transient hash shard, some
        // landing on it) and genuine migrations.
        let blocks = vec![
            Block::new(
                4,
                (0..8)
                    .map(|i| Transaction::transfer(AccountId(200 + i), AccountId((i % 4) * 10)))
                    .collect(),
            ),
            Block::new(
                5,
                (0..20)
                    .map(|i| Transaction::transfer(AccountId(0), AccountId(10 + (i % 5))))
                    .collect(),
            ),
        ];
        let updates = service.run(&blocks);
        assert_eq!(updates.len(), 1, "one closed epoch");
        let update = &updates[0];

        let mut expected = update.migrations() as u64;
        let mut departures = 0u64;
        for m in update.moves.iter().filter(|m| m.from.is_none()) {
            let transient = service.graph().account(m.node).hash_shard(k);
            if transient != m.to {
                departures += 1;
            }
        }
        expected += departures;
        assert!(
            update.placements() > 0,
            "fixture must exercise mid-epoch placements"
        );
        assert_eq!(
            service.report().migrations,
            expected,
            "each transient-shard departure is one substrate migration — \
             placements landing on their hash shard are free, nothing is \
             counted twice"
        );
    }

    /// The golden resume test: checkpoint → crash → resume must be
    /// bit-identical to an uninterrupted run — labels, consensus
    /// counters, fault-injection stream, hybrid schedule phase, all of
    /// it — with the fault injector active the whole time.
    #[test]
    fn checkpoint_crash_resume_is_bit_identical() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::mixed(9);
        let config = service_config(3, 10, 2);
        let mut gen = generator();
        let warm = gen.blocks(40);
        let live = gen.blocks(60);

        // The uninterrupted reference run.
        let mut reference = ChainService::new(config.clone());
        reference.set_fault_plan(plan);
        reference.warmup(&warm);
        let ref_updates = reference.run(&live);

        // The crashing run: 3 epochs, checkpoint, drop everything.
        let mut doomed = ChainService::new(config.clone());
        doomed.set_fault_plan(plan);
        doomed.warmup(&warm);
        let mut early = doomed.run(&live[..30]);
        let image = doomed.checkpoint().expect("boundary checkpoint");
        drop(doomed);

        // Resume from the image and finish the stream.
        let mut resumed = ChainService::resume(config, &image).expect("valid image");
        assert_eq!(resumed.resume_carry(), Some(StateCarry::Warm));
        assert_eq!(resumed.epochs_closed(), 3);
        early.extend(resumed.run(&live[30..]));

        assert_eq!(ref_updates.len(), early.len());
        for (i, (a, b)) in ref_updates.iter().zip(&early).enumerate() {
            assert_eq!(a.moves, b.moves, "epoch {i} diffs diverged");
            assert_eq!(a.kind, b.kind, "epoch {i} schedule phase diverged");
        }
        assert_eq!(
            reference.allocation().labels(),
            resumed.allocation().labels(),
            "final labels must be bit-identical"
        );
        assert_eq!(
            format!("{:?}", reference.report()),
            format!("{:?}", resumed.report()),
            "consensus counters (including fault retries) must match"
        );
        assert_eq!(reference.epochs_closed(), resumed.epochs_closed());
        // And the resumed service's own next checkpoint matches the
        // reference's byte-for-byte.
        assert_eq!(
            reference.checkpoint().unwrap(),
            resumed.checkpoint().unwrap()
        );
    }

    #[test]
    fn checkpoint_outside_a_boundary_is_refused() {
        let mut gen = generator();
        let mut service = ChainService::new(service_config(2, 10, 1000));
        assert_eq!(
            service.checkpoint().err(),
            Some(crate::error::ChainError::NotWarmedUp)
        );
        service.warmup(&gen.blocks(10));
        assert!(service.checkpoint().is_ok(), "warm-up ends on a boundary");
        service.run(&gen.blocks(3));
        assert_eq!(
            service.checkpoint().err(),
            Some(crate::error::ChainError::MidEpochCheckpoint {
                blocks_into_epoch: 3
            })
        );
        service.run(&gen.blocks(7));
        assert!(service.checkpoint().is_ok(), "epoch closed again");
    }

    #[test]
    fn corrupt_images_and_config_mismatches_are_typed_errors() {
        use crate::error::ChainError;
        use txallo_core::CheckpointError;
        let mut gen = generator();
        let mut service = ChainService::new(service_config(2, 10, 1000));
        service.warmup(&gen.blocks(10));
        let image = service.checkpoint().unwrap();

        let mut flipped = image.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert_eq!(
            ChainService::resume(service_config(2, 10, 1000), &flipped).err(),
            Some(ChainError::CorruptCheckpoint(
                CheckpointError::ChecksumMismatch
            ))
        );
        assert_eq!(
            ChainService::resume(service_config(3, 10, 1000), &image).err(),
            Some(ChainError::ShardMismatch {
                expected: 3,
                found: 2
            })
        );
        assert!(ChainService::resume(service_config(2, 10, 1000), &image).is_ok());
    }

    #[test]
    fn scheduler_stream_resumes_cold_but_sound() {
        // The transaction-level scheduler keeps unserializable state; a
        // checkpoint degrades to labels-only and resume cold-opens the
        // stream — visibly, via `resume_carry`.
        let mut gen = generator();
        let mut config = service_config(2, 10, 1000);
        config.method = "scheduler".into();
        let mut service = ChainService::new(config.clone());
        service.warmup(&gen.blocks(20));
        service.run(&gen.blocks(10));
        let image = service.checkpoint().unwrap();
        let resumed = ChainService::resume(config, &image).unwrap();
        assert_eq!(resumed.resume_carry(), Some(StateCarry::Rebuilt));
        assert_eq!(resumed.epochs_closed(), 1);
        assert_eq!(
            resumed.allocation().len(),
            resumed.graph().node_count(),
            "cold-opened stream still labels every account"
        );
    }

    #[test]
    fn health_check_walks_the_recovery_ladder() {
        // A negative tolerance makes every audit "fail", deterministically
        // driving the ladder: healthy → invalidated → hash fallback. The
        // service must keep closing epochs the whole way down.
        let mut gen = generator();
        let mut service = ChainService::new(service_config(3, 10, 1000));
        service.enable_health_check(1, -1.0);
        service.warmup(&gen.blocks(40));
        assert_eq!(service.degradation(), Degradation::None);

        service.run(&gen.blocks(10));
        assert_eq!(
            service.degradation(),
            Degradation::Invalidated,
            "first strike drops the warm session"
        );
        service.run(&gen.blocks(10));
        assert_eq!(
            service.degradation(),
            Degradation::HashFallback,
            "second strike falls back to hash allocation"
        );
        // Life goes on at the bottom rung: epochs close, every account
        // is labelled, and the rung is sticky.
        let updates = service.run(&gen.blocks(20));
        assert_eq!(updates.len(), 2);
        assert_eq!(service.epochs_closed(), 4);
        assert_eq!(service.allocation().len(), service.graph().node_count());
        assert_eq!(service.degradation(), Degradation::HashFallback);

        // The rung survives a checkpoint/resume cycle.
        let image = service.checkpoint().unwrap();
        let resumed = ChainService::resume(service_config(3, 10, 1000), &image).unwrap();
        assert_eq!(resumed.degradation(), Degradation::HashFallback);
    }

    #[test]
    fn invalid_service_configurations_are_typed_errors() {
        use crate::error::ChainError;
        let mut empty = service_config(2, 10, 1000);
        empty.epoch_blocks = 0;
        assert_eq!(
            ChainService::try_new(empty).err(),
            Some(ChainError::EmptyEpoch)
        );
        let mut unknown = service_config(2, 10, 1000);
        unknown.method = "oracle".into();
        match ChainService::try_new(unknown) {
            Err(ChainError::UnknownMethod(e)) => {
                assert!(e.to_string().contains("oracle"));
            }
            other => panic!("expected UnknownMethod, got {other:?}"),
        }
    }

    #[test]
    fn mid_epoch_new_accounts_get_transient_hash_labels() {
        let mut gen = generator();
        let mut service = ChainService::new(service_config(3, 50, 5));
        service.warmup(&gen.blocks(20));
        // Fewer blocks than an epoch: no boundary fires, yet consensus
        // processed every block (new accounts included).
        let updates = service.run(&gen.blocks(10));
        assert!(updates.is_empty());
        assert_eq!(service.allocation().len(), service.graph().node_count());
        assert!(service.report().blocks == 10);
    }
}
