//! The epoch-driven chain service: consensus substrate + streaming
//! allocation in one loop.
//!
//! [`ChainService`] is the chain-side twin of the simulator's driver: it
//! owns the accumulated [`TxGraph`], a [`ChainEngine`] (per-shard PBFT +
//! cross-shard Atomix), and a [`StreamingAllocator`] resolved by name
//! through the [`AllocatorRegistry`]. Blocks flow through
//! [`ChainService::process_block`]; every `epoch_blocks` blocks the
//! service closes the epoch, *executes the reallocation diff on the
//! substrate* ([`ChainEngine::apply_reallocation`] — each migrated
//! account is a batched Atomix state transfer between its old and new
//! shard) and only then applies it to the serving mapping. Reallocation
//! is therefore a measured protocol cost, exactly like the transactions
//! it is supposed to save.

use txallo_core::{
    Allocation, AllocationUpdate, AllocatorRegistry, EpochKind, HybridSchedule, StreamingAllocator,
    TxAlloParams,
};
use txallo_graph::TxGraph;
use txallo_model::Block;

use crate::engine::{ChainEngine, ChainEngineConfig, EngineReport};

/// Configuration of the epoch-driven chain service.
#[derive(Debug, Clone)]
pub struct ChainServiceConfig {
    /// The consensus-substrate configuration.
    pub engine: ChainEngineConfig,
    /// Epoch length `τ₁` in blocks.
    pub epoch_blocks: usize,
    /// Allocation method, resolved through
    /// [`AllocatorRegistry::builtin`].
    pub method: String,
    /// TxAllo's global-refresh policy (ignored by schedule-free methods).
    pub schedule: HybridSchedule,
    /// Cross-shard workload parameter `η` of the allocation objective
    /// (the engine independently *measures* the realized η).
    pub eta: f64,
}

impl ChainServiceConfig {
    /// Defaults mirroring [`ChainEngineConfig::new`]: `τ₁ = 100` blocks,
    /// TxAllo under the paper's 20-epoch hybrid gap, η = 2.
    pub fn new(shards: usize) -> Self {
        Self {
            engine: ChainEngineConfig::new(shards),
            epoch_blocks: 100,
            method: "txallo".to_string(),
            schedule: HybridSchedule::Hybrid { global_gap: 20 },
            eta: 2.0,
        }
    }
}

/// The running service (see the [module docs](self)).
#[derive(Debug)]
pub struct ChainService {
    config: ChainServiceConfig,
    graph: TxGraph,
    engine: ChainEngine,
    stream: Box<dyn StreamingAllocator>,
    allocation: Allocation,
    blocks_in_epoch: usize,
    epochs_closed: u64,
    warmed_up: bool,
}

impl ChainService {
    /// Builds the service.
    ///
    /// # Panics
    /// Panics on a structurally invalid configuration, including a
    /// `method` the builtin registry does not know.
    pub fn new(config: ChainServiceConfig) -> Self {
        Self::with_registry(config, &AllocatorRegistry::builtin())
    }

    /// [`ChainService::new`] with a caller-supplied registry.
    pub fn with_registry(config: ChainServiceConfig, registry: &AllocatorRegistry) -> Self {
        assert!(config.epoch_blocks > 0, "epochs must contain blocks");
        let shards = config.engine.shards;
        let params = TxAlloParams::for_total_weight(0.0, shards).with_eta(config.eta);
        let stream = registry
            .streaming(&config.method, &params, config.schedule)
            .unwrap_or_else(|e| panic!("{e}"));
        Self {
            engine: ChainEngine::new(config.engine.clone()),
            config,
            graph: TxGraph::new(),
            stream,
            allocation: Allocation::new(Vec::new(), shards),
            blocks_in_epoch: 0,
            epochs_closed: 0,
            warmed_up: false,
        }
    }

    /// Ingests the historical prefix (not processed by consensus) and
    /// opens the allocation service on it.
    pub fn warmup(&mut self, blocks: &[Block]) {
        for b in blocks {
            self.graph.ingest_block(b);
        }
        let params = TxAlloParams::for_graph(&self.graph, self.config.engine.shards)
            .with_eta(self.config.eta);
        self.allocation = self.stream.begin(&self.graph, &params);
        self.warmed_up = true;
    }

    /// Processes one live block: ingest, let the allocation service
    /// observe it, run it through consensus under the *current* mapping,
    /// and — at an epoch boundary — close the epoch. Returns the epoch's
    /// [`AllocationUpdate`] when this block closed one.
    ///
    /// # Panics
    /// Panics if called before [`ChainService::warmup`].
    pub fn process_block(&mut self, block: &Block) -> Option<AllocationUpdate> {
        assert!(self.warmed_up, "call warmup() before process_block()");
        // The interned view hands the stream each transaction's dense node
        // ids straight from ingestion — no account re-hashing per epoch.
        let nodes = self.graph.ingest_block_nodes(block);
        self.stream.on_block_nodes(&self.graph, block, &nodes);
        // New accounts appear mid-epoch, before any boundary labels them:
        // consensus needs a shard *now*, so unlabelled accounts fall back
        // to their hash shard until the epoch closes (the same rule the
        // hash baseline uses for every account, applied transiently).
        self.extend_allocation_by_hash();
        self.engine
            .process_block(block, &self.graph, &self.allocation);

        self.blocks_in_epoch += 1;
        if self.blocks_in_epoch < self.config.epoch_blocks {
            return None;
        }
        self.blocks_in_epoch = 0;
        let update = self.stream.end_epoch(&self.graph, EpochKind::Scheduled);
        // The diff hits the substrate first (migrations are Atomix state
        // transfers), then the mapping. Accounts that arrived mid-epoch
        // were served — and committed state — on their transient hash
        // shard, so the stream's "placement" of such an account is a real
        // state transfer too: rewrite those moves with the transient
        // shard as the source before charging the substrate.
        let mut substrate = update.clone();
        for m in &mut substrate.moves {
            if m.from.is_none() && (m.node as usize) < self.allocation.len() {
                m.from = Some(self.allocation.shard_of(m.node));
            }
        }
        self.engine.apply_reallocation(&substrate);
        // The service's allocation holds those hash-fallback labels, so
        // it re-syncs from the stream rather than replaying the diff.
        self.allocation = self.stream.allocation();
        self.epochs_closed += 1;
        Some(update)
    }

    /// Runs a whole block stream, returning the updates of every closed
    /// epoch.
    pub fn run(&mut self, blocks: &[Block]) -> Vec<AllocationUpdate> {
        blocks
            .iter()
            .filter_map(|b| self.process_block(b))
            .collect()
    }

    fn extend_allocation_by_hash(&mut self) {
        use txallo_graph::WeightedGraph;
        let n = self.graph.node_count();
        let shards = self.allocation.shard_count();
        for v in self.allocation.len()..n {
            self.allocation
                .push_shard(self.graph.account(v as u32).hash_shard(shards));
        }
    }

    /// The consensus-substrate report so far.
    pub fn report(&self) -> EngineReport {
        self.engine.report()
    }

    /// The current account-shard mapping.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// The accumulated transaction graph.
    pub fn graph(&self) -> &TxGraph {
        &self.graph
    }

    /// Epochs closed since warm-up.
    pub fn epochs_closed(&self) -> u64 {
        self.epochs_closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_core::UpdateKind;
    use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

    fn service_config(shards: usize, epoch_blocks: usize, gap: u64) -> ChainServiceConfig {
        ChainServiceConfig {
            engine: ChainEngineConfig {
                shards,
                validators: shards * 8,
                byzantine: 0,
                batch_size: 16,
                reshuffle_interval: 0,
            },
            epoch_blocks,
            schedule: HybridSchedule::Hybrid { global_gap: gap },
            ..ChainServiceConfig::new(shards)
        }
    }

    fn generator() -> EthereumLikeGenerator {
        let cfg = WorkloadConfig {
            accounts: 1_000,
            transactions: 30_000,
            block_size: 50,
            groups: 25,
            new_account_prob: 0.01,
            drift_interval: 20,
            ..WorkloadConfig::default()
        };
        EthereumLikeGenerator::new(cfg, 33)
    }

    #[test]
    fn epochs_close_and_migrations_hit_the_substrate() {
        let mut gen = generator();
        let mut service = ChainService::new(service_config(4, 10, 2));
        service.warmup(&gen.blocks(100));
        let updates = service.run(&gen.blocks(60));
        assert_eq!(updates.len(), 6);
        assert_eq!(service.epochs_closed(), 6);
        assert_eq!(
            updates[2].kind,
            UpdateKind::Global,
            "gap 2 fires at epoch 2"
        );

        let migrated: u64 = updates.iter().map(|u| u.migrations() as u64).sum();
        let r = service.report();
        // The substrate executes every diffed migration, plus the state
        // transfers of mid-epoch accounts leaving their transient hash
        // shard (the stream reports those as placements).
        assert!(
            r.migrations >= migrated,
            "substrate migrations {} must cover the {} diffed migrations",
            r.migrations,
            migrated
        );
        if migrated > 0 {
            assert!(
                r.migration_messages > 0,
                "migrations are not free: they cost Atomix messages"
            );
        }
        assert!(r.intra_committed + r.cross_committed > 0);
        // The served mapping covers every account.
        use txallo_graph::WeightedGraph;
        assert_eq!(service.allocation().len(), service.graph().node_count());
    }

    #[test]
    fn allocation_quality_beats_hash_on_structured_traffic() {
        // Epoch-driven TxAllo must yield fewer cross-shard commits than
        // the hash stream on the same trace — the §V-C claim, measured on
        // the consensus substrate itself.
        let cross_ratio = |method: &str| {
            let mut gen = generator();
            let mut config = service_config(4, 10, 2);
            config.method = method.into();
            let mut service = ChainService::new(config);
            service.warmup(&gen.blocks(100));
            service.run(&gen.blocks(40));
            let r = service.report();
            r.cross_committed as f64 / (r.cross_committed + r.intra_committed).max(1) as f64
        };
        let txallo = cross_ratio("txallo");
        let hash = cross_ratio("hash");
        assert!(
            txallo < hash,
            "txallo cross ratio {txallo} must beat hash {hash}"
        );
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn block_before_warmup_panics() {
        let mut gen = generator();
        let block = gen.blocks(1).pop().unwrap();
        let mut service = ChainService::new(ChainServiceConfig::new(2));
        let _ = service.process_block(&block);
    }

    /// An account that arrives mid-epoch is served on a transient hash
    /// shard; when `end_epoch` places it elsewhere, the substrate must
    /// charge that departure exactly once — the stream still reports it as
    /// a placement (`from: None`), and the engine's migration count equals
    /// `diffed migrations + placements that left their transient shard`,
    /// with no double counting on either side.
    #[test]
    fn transient_shard_departure_is_charged_exactly_once() {
        use txallo_model::{AccountId, Block, Transaction};
        let k = 4usize;
        let clique = |base: u64| -> Vec<Transaction> {
            let mut txs = Vec::new();
            for i in 0..5 {
                for j in (i + 1)..5 {
                    txs.push(Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
            txs
        };
        let warm: Vec<Block> = (0..4u64)
            .map(|h| Block::new(h, clique((h % 4) * 10)))
            .collect();
        let mut service = ChainService::new(service_config(k, 2, 1000));
        service.warmup(&warm);
        assert_eq!(service.report().migrations, 0, "warm-up is free");

        // One epoch (two blocks) with a burst of brand-new accounts bound
        // to existing cliques plus churn between cliques: a mix of
        // placements (some leaving their transient hash shard, some
        // landing on it) and genuine migrations.
        let blocks = vec![
            Block::new(
                4,
                (0..8)
                    .map(|i| Transaction::transfer(AccountId(200 + i), AccountId((i % 4) * 10)))
                    .collect(),
            ),
            Block::new(
                5,
                (0..20)
                    .map(|i| Transaction::transfer(AccountId(0), AccountId(10 + (i % 5))))
                    .collect(),
            ),
        ];
        let updates = service.run(&blocks);
        assert_eq!(updates.len(), 1, "one closed epoch");
        let update = &updates[0];

        let mut expected = update.migrations() as u64;
        let mut departures = 0u64;
        for m in update.moves.iter().filter(|m| m.from.is_none()) {
            let transient = service.graph().account(m.node).hash_shard(k);
            if transient != m.to {
                departures += 1;
            }
        }
        expected += departures;
        assert!(
            update.placements() > 0,
            "fixture must exercise mid-epoch placements"
        );
        assert_eq!(
            service.report().migrations,
            expected,
            "each transient-shard departure is one substrate migration — \
             placements landing on their hash shard are free, nothing is \
             counted twice"
        );
    }

    #[test]
    fn mid_epoch_new_accounts_get_transient_hash_labels() {
        let mut gen = generator();
        let mut service = ChainService::new(service_config(3, 50, 5));
        service.warmup(&gen.blocks(20));
        // Fewer blocks than an epoch: no boundary fires, yet consensus
        // processed every block (new accounts included).
        let updates = service.run(&gen.blocks(10));
        assert!(updates.is_empty());
        use txallo_graph::WeightedGraph;
        assert_eq!(service.allocation().len(), service.graph().node_count());
        assert!(service.report().blocks == 10);
    }
}
