//! Typed errors for the chain substrate.
//!
//! Fallible configuration and checkpoint paths return [`ChainError`]
//! instead of panicking; the panicking constructors (`ValidatorSet::new`,
//! `ChainService::new`, …) delegate to the `try_` variants and surface
//! the same messages, so existing callers keep their behavior.

use std::fmt;

use txallo_core::{CheckpointError, UnknownAllocator};

/// Errors raised by chain configuration, service, and checkpoint paths.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainError {
    /// The allocation method is not registered (wraps the registry's
    /// [`UnknownAllocator`] so its name enumeration survives).
    UnknownMethod(UnknownAllocator),
    /// A configuration asked for zero shards.
    NoShards,
    /// Fewer validators than shards — some shard would be empty.
    NoValidators {
        /// Validators available.
        total: usize,
        /// Shards requested.
        shards: usize,
    },
    /// More Byzantine validators than validators.
    TooManyFaults {
        /// Byzantine count requested.
        byzantine: usize,
        /// Total validators.
        total: usize,
    },
    /// The Byzantine count breaks the `f < n/3` PBFT quorum bound: even a
    /// perfectly even spread leaves some shard unable to commit.
    QuorumViolation {
        /// Byzantine count requested.
        byzantine: usize,
        /// Total validators.
        total: usize,
        /// Shards the population splits across.
        shards: usize,
    },
    /// An epoch length of zero blocks.
    EmptyEpoch,
    /// `checkpoint()` called part-way through an epoch; the format only
    /// captures epoch-boundary state.
    MidEpochCheckpoint {
        /// Blocks processed since the last boundary.
        blocks_into_epoch: usize,
    },
    /// `checkpoint()` called before `warmup()`/`resume()`.
    NotWarmedUp,
    /// The checkpoint bytes failed validation (bad magic, version,
    /// checksum, or truncation).
    CorruptCheckpoint(CheckpointError),
    /// The checkpoint was taken under a different shard count than the
    /// resuming configuration.
    ShardMismatch {
        /// Shards in the resuming configuration.
        expected: usize,
        /// Shards recorded in the checkpoint.
        found: usize,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownMethod(e) => write!(f, "{e}"),
            ChainError::NoShards => write!(f, "need at least one shard"),
            ChainError::NoValidators { total, shards } => write!(
                f,
                "need at least one validator per shard ({total} validators over {shards} shards)"
            ),
            ChainError::TooManyFaults { byzantine, total } => write!(
                f,
                "cannot have more faults than validators ({byzantine} > {total})"
            ),
            ChainError::QuorumViolation {
                byzantine,
                total,
                shards,
            } => write!(
                f,
                "{byzantine} Byzantine of {total} validators over {shards} shard(s) breaks \
                 the f < n/3 quorum bound"
            ),
            ChainError::EmptyEpoch => write!(f, "epochs must contain blocks"),
            ChainError::MidEpochCheckpoint { blocks_into_epoch } => write!(
                f,
                "checkpoints are epoch-boundary only ({blocks_into_epoch} block(s) into the \
                 current epoch)"
            ),
            ChainError::NotWarmedUp => {
                write!(f, "service not warmed up: call warmup() or resume() first")
            }
            ChainError::CorruptCheckpoint(e) => write!(f, "corrupt checkpoint: {e}"),
            ChainError::ShardMismatch { expected, found } => write!(
                f,
                "checkpoint shard count {found} does not match the configured {expected}"
            ),
        }
    }
}

impl std::error::Error for ChainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChainError::CorruptCheckpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnknownAllocator> for ChainError {
    fn from(e: UnknownAllocator) -> Self {
        ChainError::UnknownMethod(e)
    }
}

impl From<CheckpointError> for ChainError {
    fn from(e: CheckpointError) -> Self {
        ChainError::CorruptCheckpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_historic_panic_substrings() {
        // The panicking constructors delegate to `try_` + `panic!("{e}")`;
        // these substrings are load-bearing for #[should_panic] callers.
        assert!(ChainError::NoShards
            .to_string()
            .contains("at least one shard"));
        assert!(ChainError::NoValidators {
            total: 2,
            shards: 3
        }
        .to_string()
        .contains("at least one validator per shard"));
        assert!(ChainError::TooManyFaults {
            byzantine: 5,
            total: 4
        }
        .to_string()
        .contains("more faults than validators"));
        assert!(ChainError::EmptyEpoch
            .to_string()
            .contains("epochs must contain blocks"));
        let q = ChainError::QuorumViolation {
            byzantine: 2,
            total: 4,
            shards: 1,
        };
        assert!(q.to_string().contains("quorum"));
    }
}
