//! Cross-shard atomic commit (client-driven Atomix, OmniLedger-style).
//!
//! A cross-shard transaction touching shards `S = {s₁, …, s_µ}` runs:
//!
//! 1. **Lock phase** — every *input* shard runs a consensus round to lock
//!    the transaction's state and emits a proof-of-acceptance (or
//!    proof-of-rejection).
//! 2. **Commit/abort phase** — given all proofs, every involved shard runs
//!    a second consensus round to apply (or unlock) the transaction.
//!
//! Each phase is a full intra-shard consensus round per shard, which is
//! exactly why the paper charges a cross-shard transaction `η > 1` per
//! involved shard: processing it costs ≈ 2 consensus rounds instead of a
//! share of one batched round, plus the client's proof relay messages.

use crate::fault::FaultInjector;
use crate::pbft::PbftShard;

/// Result of running Atomix for one cross-shard transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomixOutcome {
    /// Whether every shard accepted (commit) or anything aborted.
    pub committed: bool,
    /// Total consensus + relay messages across all phases and shards.
    pub messages: u64,
    /// Consensus rounds executed across all involved shards.
    pub rounds: u32,
    /// Timeout-driven retries across all rounds and the proof relay
    /// (always 0 on the fault-free path).
    pub retries: u32,
}

/// The 2-phase cross-shard protocol over a set of shard consensus
/// instances.
#[derive(Debug)]
pub struct AtomixProtocol;

impl AtomixProtocol {
    /// Runs lock + commit for a transaction involving `shards` (indices
    /// into `instances`). Aborts — still costing the unlock round — when
    /// any lock round fails to commit.
    pub fn run(instances: &mut [PbftShard], shards: &[u32]) -> AtomixOutcome {
        assert!(
            shards.len() >= 2,
            "Atomix is only for cross-shard transactions"
        );
        let mut messages = 0u64;
        let mut rounds = 0u32;
        let mut all_locked = true;

        // Phase 1: lock in every involved shard.
        for &s in shards {
            let out = instances[s as usize].run_round();
            messages += out.messages;
            rounds += 1;
            if !out.committed {
                all_locked = false;
            }
        }
        // Client relays µ proofs to every involved shard.
        messages += (shards.len() * shards.len()) as u64;

        // Phase 2: commit (or unlock) everywhere.
        for &s in shards {
            let out = instances[s as usize].run_round();
            messages += out.messages;
            rounds += 1;
            if !out.committed {
                all_locked = false;
            }
        }

        AtomixOutcome {
            committed: all_locked,
            messages,
            rounds,
            retries: 0,
        }
    }

    /// [`AtomixProtocol::run`] under fault injection: each per-shard
    /// consensus round runs with timeouts/retries
    /// ([`PbftShard::run_round_faulty`]), and the client's proof-relay
    /// bundle can itself be dropped, forcing a rebroadcast. Atomicity is
    /// preserved by construction: any failed lock (including one that
    /// exhausted its retries) turns phase 2 into the unlock round, so no
    /// shard ever applies a partially-locked transaction.
    pub fn run_faulty(
        instances: &mut [PbftShard],
        shards: &[u32],
        inj: &mut FaultInjector,
    ) -> AtomixOutcome {
        assert!(
            shards.len() >= 2,
            "Atomix is only for cross-shard transactions"
        );
        let mut messages = 0u64;
        let mut rounds = 0u32;
        let mut retries = 0u32;
        let mut all_locked = true;

        // Phase 1: lock in every involved shard.
        for &s in shards {
            let out = instances[s as usize].run_round_faulty(inj);
            messages += out.messages;
            rounds += 1;
            retries += out.retries;
            if !out.committed {
                all_locked = false;
            }
        }
        // Client relays µ proofs to every involved shard; a lost bundle is
        // re-sent in full (the client cannot tell which copy made it).
        let relay = (shards.len() * shards.len()) as u64;
        messages += relay;
        if inj.drop_message() {
            messages += relay;
            retries += 1;
        }

        // Phase 2: commit (or unlock) everywhere.
        for &s in shards {
            let out = instances[s as usize].run_round_faulty(inj);
            messages += out.messages;
            rounds += 1;
            retries += out.retries;
            if !out.committed {
                all_locked = false;
            }
        }

        AtomixOutcome {
            committed: all_locked,
            messages,
            rounds,
            retries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::Validator;

    fn healthy_shard(n: usize) -> PbftShard {
        PbftShard::new(
            (0..n as u32)
                .map(|id| Validator {
                    id,
                    byzantine: false,
                })
                .collect(),
        )
    }

    fn broken_shard(n: usize) -> PbftShard {
        // Majority Byzantine: can never reach quorum.
        PbftShard::new(
            (0..n as u32)
                .map(|id| Validator {
                    id,
                    byzantine: id < (n as u32 * 2) / 3 + 1,
                })
                .collect(),
        )
    }

    #[test]
    fn two_shard_commit() {
        let mut shards = vec![healthy_shard(4), healthy_shard(4)];
        let out = AtomixProtocol::run(&mut shards, &[0, 1]);
        assert!(out.committed);
        assert_eq!(out.rounds, 4, "2 shards × 2 phases");
    }

    #[test]
    fn any_failed_lock_aborts_atomically() {
        let mut shards = vec![healthy_shard(4), broken_shard(4)];
        let out = AtomixProtocol::run(&mut shards, &[0, 1]);
        assert!(
            !out.committed,
            "atomicity: one rejecting shard aborts the whole tx"
        );
        assert_eq!(out.rounds, 4, "the unlock phase still runs");
    }

    #[test]
    fn message_cost_grows_with_mu() {
        let run_mu = |mu: usize| {
            let mut shards: Vec<PbftShard> = (0..mu).map(|_| healthy_shard(4)).collect();
            let ids: Vec<u32> = (0..mu as u32).collect();
            AtomixProtocol::run(&mut shards, &ids).messages
        };
        let m2 = run_mu(2);
        let m4 = run_mu(4);
        assert!(m4 > m2, "more involved shards cost more");
        // Roughly linear in µ (per-shard consensus dominates).
        let ratio = m4 as f64 / m2 as f64;
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "cross-shard")]
    fn rejects_single_shard_use() {
        let mut shards = vec![healthy_shard(4)];
        let _ = AtomixProtocol::run(&mut shards, &[0]);
    }

    #[test]
    fn faulty_run_preserves_atomicity_and_is_deterministic() {
        use crate::fault::{FaultInjector, FaultPlan};
        let plan = FaultPlan {
            seed: 3,
            drop_rate: 0.35,
            duplicate_rate: 0.2,
            max_retries: 1,
            ..FaultPlan::none()
        };
        let run = || {
            let mut inj = FaultInjector::new(plan);
            let mut outs = Vec::new();
            for _ in 0..100 {
                let mut shards = vec![healthy_shard(4), healthy_shard(4), healthy_shard(4)];
                outs.push(AtomixProtocol::run_faulty(
                    &mut shards,
                    &[0, 1, 2],
                    &mut inj,
                ));
            }
            outs
        };
        let outs = run();
        assert_eq!(outs, run(), "fault schedule must be deterministic");
        // Under this drop rate some runs abort (a lock exhausted its
        // retries) and some commit — and an abort still pays both phases.
        assert!(outs.iter().any(|o| o.committed));
        let aborted: Vec<_> = outs.iter().filter(|o| !o.committed).collect();
        assert!(!aborted.is_empty());
        assert!(
            aborted.iter().all(|o| o.rounds == 6),
            "unlock phase still runs"
        );
        assert!(outs.iter().any(|o| o.retries > 0));
    }

    #[test]
    fn faultless_injector_matches_plain_run() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut inj = FaultInjector::new(FaultPlan::none());
        let mut a = vec![healthy_shard(4), broken_shard(4)];
        let mut b = vec![healthy_shard(4), broken_shard(4)];
        let fa = AtomixProtocol::run_faulty(&mut a, &[0, 1], &mut inj);
        let fb = AtomixProtocol::run(&mut b, &[0, 1]);
        assert_eq!(fa, fb);
        assert_eq!(inj.counter(), 0);
    }
}
