//! Initial partitioning via greedy graph growing (GGGP).

use txallo_graph::{AdjacencyGraph, NodeId, WeightedGraph};

/// Produces an initial `k`-way partition of (the coarsest) `graph`.
///
/// For each part in turn, the heaviest unassigned vertex seeds a region,
/// which greedily absorbs the unassigned neighbor with the strongest
/// connection to the region until the region reaches the target vertex
/// weight `total/k`. Unreached vertices are swept into the currently
/// lightest parts at the end.
pub fn greedy_growing_partition(
    graph: &AdjacencyGraph,
    vertex_weights: &[f64],
    k: usize,
    balance_factor: f64,
) -> Vec<u32> {
    let n = graph.node_count();
    let mut parts = vec![u32::MAX; n];
    if n == 0 {
        return parts;
    }
    if k == 1 {
        return vec![0; n];
    }
    let total: f64 = vertex_weights.iter().sum();
    let target = total / k as f64;
    let cap = target * balance_factor;

    // Heaviest-first seed order, ties toward smaller id (determinism).
    let mut by_weight: Vec<NodeId> = (0..n as NodeId).collect();
    by_weight.sort_unstable_by(|&a, &b| {
        vertex_weights[b as usize]
            .partial_cmp(&vertex_weights[a as usize])
            .expect("finite weights") // txallo-lint: allow(lib-unwrap) — vertex weights are finite strengths (floored positive), so partial_cmp is total
            .then(a.cmp(&b))
    });

    let mut part_weight = vec![0.0f64; k];
    let mut seed_cursor = 0usize;

    // Dense frontier state, reused across parts (sparse-reset through the
    // frontier list — same structure as `bisection::grow_bisection`, no
    // hash map, so the candidate scan order is canonical per contract D1).
    // `in_map` mirrors membership of the old gain map exactly: removal
    // zeroes the gain, and a later absorb re-inserts the node with freshly
    // accumulated gain, which is what `entry().or_insert(0.0)` did after a
    // `remove`. Selection is a strict total order on (gain desc, ratio
    // desc, id asc), so the chosen node is scan-order independent and the
    // produced partition is bit-identical to the hash-map implementation.
    let mut gain = vec![0.0f64; n];
    let mut in_map = vec![false; n];
    let mut frontier: Vec<NodeId> = Vec::new();

    fn absorb_frontier(
        graph: &AdjacencyGraph,
        v: NodeId,
        parts: &[u32],
        gain: &mut [f64],
        in_map: &mut [bool],
        frontier: &mut Vec<NodeId>,
    ) {
        graph.for_each_neighbor(v, |u, w| {
            if parts[u as usize] == u32::MAX {
                gain[u as usize] += w;
                if !in_map[u as usize] {
                    in_map[u as usize] = true;
                    frontier.push(u);
                }
            }
        });
    }

    for part in 0..k as u32 {
        // Find the next unassigned seed.
        while seed_cursor < n && parts[by_weight[seed_cursor] as usize] != u32::MAX {
            seed_cursor += 1;
        }
        if seed_cursor >= n {
            break;
        }
        let seed = by_weight[seed_cursor];
        parts[seed as usize] = part;
        part_weight[part as usize] += vertex_weights[seed as usize];

        // Reset the previous part's frontier state sparsely.
        for &u in &frontier {
            gain[u as usize] = 0.0;
            in_map[u as usize] = false;
        }
        frontier.clear();
        absorb_frontier(graph, seed, &parts, &mut gain, &mut in_map, &mut frontier);

        while part_weight[part as usize] < target {
            // Deterministic max: largest gain; ties prefer the node whose
            // gain is the largest fraction of its strength (an "absorption"
            // preference that keeps the region from leaking across weak
            // bridge edges into foreign clusters); final tie → smallest id.
            // (Re-inserted nodes appear twice in `frontier`; the duplicate
            // evaluates the identical candidate, so the max is unaffected.)
            let mut best: Option<(NodeId, f64, f64)> = None;
            for &u in &frontier {
                if !in_map[u as usize] || parts[u as usize] != u32::MAX {
                    continue;
                }
                let g = gain[u as usize];
                let ratio = g / graph.strength(u).max(crate::RATIO_FLOOR);
                let better = match best {
                    None => true,
                    Some((bu, bg, br)) => {
                        g > bg || (g == bg && (ratio > br || (ratio == br && u < bu)))
                    }
                };
                if better {
                    best = Some((u, g, ratio));
                }
            }
            let Some((u, _, _)) = best else { break };
            // Remove from the candidate set (mirrors `gain.remove`).
            in_map[u as usize] = false;
            gain[u as usize] = 0.0;
            if part_weight[part as usize] + vertex_weights[u as usize] > cap {
                // Too big for this part; leave it for later parts.
                continue;
            }
            parts[u as usize] = part;
            part_weight[part as usize] += vertex_weights[u as usize];
            absorb_frontier(graph, u, &parts, &mut gain, &mut in_map, &mut frontier);
        }
    }

    // Sweep leftovers into the lightest part.
    for v in 0..n {
        if parts[v] == u32::MAX {
            let lightest = (0..k)
                .min_by(|&a, &b| part_weight[a].partial_cmp(&part_weight[b]).expect("finite")) // txallo-lint: allow(lib-unwrap) — part weights are finite sums of finite vertex weights, so partial_cmp is total
                .expect("k > 0"); // txallo-lint: allow(lib-unwrap) — the k == 0 assert and k == 1 early return above guarantee a non-empty range
            parts[v] = lightest as u32;
            part_weight[lightest] += vertex_weights[v];
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_node_within_k() {
        let mut edges = Vec::new();
        for a in 0..50u32 {
            edges.push((a, (a + 1) % 50, 1.0));
        }
        let g = AdjacencyGraph::from_edges(50, edges);
        let parts = greedy_growing_partition(&g, &vec![1.0; 50], 5, 1.1);
        assert!(parts.iter().all(|&p| p < 5));
    }

    #[test]
    fn roughly_balances_unit_weights() {
        let mut edges = Vec::new();
        for a in 0..60u32 {
            edges.push((a, (a + 1) % 60, 1.0));
            edges.push((a, (a + 2) % 60, 1.0));
        }
        let g = AdjacencyGraph::from_edges(60, edges);
        let parts = greedy_growing_partition(&g, &vec![1.0; 60], 3, 1.1);
        let mut counts = [0usize; 3];
        for &p in &parts {
            counts[p as usize] += 1;
        }
        for &c in &counts {
            assert!(c >= 10, "part badly underfilled: {counts:?}");
        }
    }

    #[test]
    fn k_equals_one() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0)]);
        assert_eq!(greedy_growing_partition(&g, &[1.0; 4], 1, 1.05), vec![0; 4]);
    }

    #[test]
    fn deterministic() {
        let mut edges = Vec::new();
        for a in 0..40u32 {
            edges.push((a, (a * 7 + 3) % 40, 1.0 + (a % 4) as f64));
        }
        let g = AdjacencyGraph::from_edges(40, edges);
        let w: Vec<f64> = (0..40).map(|i| 1.0 + (i % 3) as f64).collect();
        let a = greedy_growing_partition(&g, &w, 4, 1.05);
        let b = greedy_growing_partition(&g, &w, 4, 1.05);
        assert_eq!(a, b);
    }
}
