//! Coarsening phase: heavy-edge matching and hierarchy construction.
//!
//! ## Parallel matching (determinism rule D5)
//!
//! [`heavy_edge_matching_threaded`] precomputes, in parallel over
//! canonical row ranges, each node's heaviest neighbor over its *whole*
//! row (matched state ignored — a pure per-row function under the serial
//! tie-break), then runs the exact serial matching loop consulting that
//! table: when the precomputed candidate is still unmatched it is
//! provably the serial scan's pick (the argmax over a superset that
//! still contains it), otherwise the loop falls back to the serial
//! rescan. The mate array — and with it the whole hierarchy — is
//! byte-identical to the serial matching at every thread count.

use txallo_graph::par::{entry_balanced_split, for_each_chunk_mut, resolve_threads};
use txallo_graph::{fit_u32, AdjacencyGraph, NodeId, WeightedGraph};

/// One level of the multilevel hierarchy.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The graph at this level.
    pub graph: AdjacencyGraph,
    /// Vertex weight per node of this level.
    pub vertex_weights: Vec<f64>,
    /// For non-base levels: maps each node of the *previous (finer)* level
    /// to its super-node at this level. `None` for the base level.
    pub fine_to_coarse: Option<Vec<u32>>,
}

/// Reusable scratch for the coarsening loop: the matching's mate array and
/// the coarse edge list are cleared and refilled every level instead of
/// reallocated (the level-0 high-water mark is allocated once and the
/// geometrically shrinking levels ride inside it).
#[derive(Debug, Clone, Default)]
pub struct CoarsenArena {
    /// `mate[v]` = matched partner of `v` (possibly `v` itself), or
    /// [`CoarsenArena::UNMATCHED`].
    mate: Vec<NodeId>,
    /// Coarse edge list under construction.
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl CoarsenArena {
    /// Sentinel for a not-yet-matched node.
    const UNMATCHED: NodeId = NodeId::MAX;

    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Heavy-edge matching (HEM).
///
/// Visits nodes in ascending id order; an unmatched node is matched with
/// its heaviest unmatched neighbor (ties broken toward the smaller id).
/// Returns a dense map `fine node → coarse node`, assigning coarse ids in
/// first-seen order (deterministic).
pub fn heavy_edge_matching(graph: &AdjacencyGraph) -> (Vec<u32>, usize) {
    heavy_edge_matching_in(graph, &mut CoarsenArena::new())
}

/// [`heavy_edge_matching`] with a caller-owned [`CoarsenArena`], reusing
/// its mate buffer across invocations.
pub fn heavy_edge_matching_in(
    graph: &AdjacencyGraph,
    arena: &mut CoarsenArena,
) -> (Vec<u32>, usize) {
    let n = graph.node_count();
    arena.mate.clear();
    arena.mate.resize(n, CoarsenArena::UNMATCHED);
    let mate = &mut arena.mate;
    for v in 0..n as NodeId {
        if mate[v as usize] != CoarsenArena::UNMATCHED {
            continue;
        }
        let mut best: Option<(NodeId, f64)> = None;
        graph.for_each_neighbor(v, |u, w| {
            if mate[u as usize] != CoarsenArena::UNMATCHED || u == v {
                return;
            }
            match best {
                Some((bu, bw)) if w < bw || (w == bw && u > bu) => {}
                _ => best = Some((u, w)),
            }
        });
        if let Some((u, _)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        } else {
            mate[v as usize] = v; // matched with itself
        }
    }

    coarse_ids_first_seen(&arena.mate)
}

/// Dense coarse ids from a completed mate array, assigned in first-seen
/// order (deterministic).
fn coarse_ids_first_seen(mate: &[NodeId]) -> (Vec<u32>, usize) {
    let n = mate.len();
    let mut coarse_of: Vec<u32> = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if coarse_of[v] != u32::MAX {
            continue;
        }
        let m = mate[v] as usize;
        coarse_of[v] = next;
        coarse_of[m] = next;
        next += 1;
    }
    (coarse_of, next as usize)
}

/// [`heavy_edge_matching_in`] with a thread-count knob (see the module
/// docs): `threads <= 1` is the exact serial code path; more threads
/// precompute the per-row heaviest-neighbor table over canonical row
/// ranges and replay the identical serial matching sequence.
pub fn heavy_edge_matching_threaded(
    graph: &AdjacencyGraph,
    arena: &mut CoarsenArena,
    threads: usize,
) -> (Vec<u32>, usize) {
    let workers = resolve_threads(threads);
    let n = graph.node_count();
    if workers <= 1 || n == 0 {
        return heavy_edge_matching_in(graph, arena);
    }

    // Parallel precompute: the heaviest neighbor of each row under the
    // serial tie-break (heavier wins; equal weight → smaller id),
    // ignoring matched state — a pure function of the row, written into
    // its own slot.
    let mut deg_prefix = vec![0u32; n + 1];
    for v in 0..n {
        deg_prefix[v + 1] = deg_prefix[v] + fit_u32(graph.neighbor_count(v as NodeId));
    }
    let bounds = entry_balanced_split(&deg_prefix, workers);
    let mut best_all: Vec<Option<(NodeId, f64)>> = vec![None; n];
    let mut scratch = vec![(); bounds.len() - 1];
    for_each_chunk_mut(&bounds, &mut best_all, &mut scratch, |lo, window, _| {
        for (i, slot) in window.iter_mut().enumerate() {
            let v = (lo + i) as NodeId;
            let mut best: Option<(NodeId, f64)> = None;
            graph.for_each_neighbor(v, |u, w| {
                if u == v {
                    return;
                }
                match best {
                    Some((bu, bw)) if w < bw || (w == bw && u > bu) => {}
                    _ => best = Some((u, w)),
                }
            });
            *slot = best;
        }
    });

    // Serial matching loop. When the precomputed heaviest neighbor is
    // still unmatched it is exactly the serial scan's pick: every other
    // unmatched candidate loses to it under the tie-break. Otherwise
    // rescan the row the serial way.
    arena.mate.clear();
    arena.mate.resize(n, CoarsenArena::UNMATCHED);
    let mate = &mut arena.mate;
    for v in 0..n as NodeId {
        if mate[v as usize] != CoarsenArena::UNMATCHED {
            continue;
        }
        let pick = match best_all[v as usize] {
            None => None,
            Some((u, _)) if mate[u as usize] == CoarsenArena::UNMATCHED => Some(u),
            Some(_) => {
                let mut best: Option<(NodeId, f64)> = None;
                graph.for_each_neighbor(v, |u, w| {
                    if mate[u as usize] != CoarsenArena::UNMATCHED || u == v {
                        return;
                    }
                    match best {
                        Some((bu, bw)) if w < bw || (w == bw && u > bu) => {}
                        _ => best = Some((u, w)),
                    }
                });
                best.map(|(u, _)| u)
            }
        };
        if let Some(u) = pick {
            mate[v as usize] = u;
            mate[u as usize] = v;
        } else {
            mate[v as usize] = v; // matched with itself
        }
    }
    coarse_ids_first_seen(&arena.mate)
}

/// Builds the coarsening hierarchy, starting at `base`, until the graph has
/// at most `floor` nodes or matching stops shrinking it.
///
/// Level 0 is the base graph; each subsequent level stores the projection
/// map from the previous level.
pub fn coarsen(base: AdjacencyGraph, vertex_weights: Vec<f64>, floor: usize) -> Vec<CoarseLevel> {
    coarsen_threaded(base, vertex_weights, floor, 1)
}

/// [`coarsen`] with a thread-count knob: every level's heavy-edge
/// matching runs through [`heavy_edge_matching_threaded`], so the whole
/// hierarchy is byte-identical at every thread count (`threads <= 1` is
/// the exact serial path).
pub fn coarsen_threaded(
    base: AdjacencyGraph,
    vertex_weights: Vec<f64>,
    floor: usize,
    threads: usize,
) -> Vec<CoarseLevel> {
    assert_eq!(vertex_weights.len(), base.node_count());
    let mut levels = vec![CoarseLevel {
        graph: base,
        vertex_weights,
        fine_to_coarse: None,
    }];
    let mut arena = CoarsenArena::new();
    loop {
        let current = levels.last().expect("at least the base level"); // txallo-lint: allow(lib-unwrap) — levels is seeded with the base level right above and never drained
        let n = current.graph.node_count();
        if n <= floor {
            break;
        }
        let (map, coarse_n) = heavy_edge_matching_threaded(&current.graph, &mut arena, threads);
        // Matching that barely shrinks the graph (e.g. star graphs) would
        // loop forever — METIS stops when the reduction is under ~5-10%.
        if coarse_n as f64 > n as f64 * 0.95 {
            break;
        }
        let mut coarse_weights = vec![0.0; coarse_n];
        for (v, &c) in map.iter().enumerate() {
            coarse_weights[c as usize] += current.vertex_weights[v];
        }
        let edges = &mut arena.edges;
        edges.clear();
        for v in 0..n as NodeId {
            let cv = map[v as usize];
            let loop_w = current.graph.self_loop(v);
            if loop_w > 0.0 {
                edges.push((cv, cv, loop_w));
            }
            current.graph.for_each_neighbor(v, |u, w| {
                if v < u {
                    let cu = map[u as usize];
                    if cu == cv {
                        edges.push((cv, cv, w));
                    } else {
                        edges.push((cv.min(cu), cv.max(cu), w));
                    }
                }
            });
        }
        let coarse_graph = AdjacencyGraph::from_edges(coarse_n, edges.iter().copied());
        levels.push(CoarseLevel {
            graph: coarse_graph,
            vertex_weights: coarse_weights,
            fine_to_coarse: Some(map),
        });
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_pairs_heavy_edges_first() {
        // 0-1 heavy, 1-2 light: HEM must pair (0,1) and leave 2 alone.
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 10.0), (1, 2, 1.0)]);
        let (map, n) = heavy_edge_matching(&g);
        assert_eq!(n, 2);
        assert_eq!(map[0], map[1]);
        assert_ne!(map[0], map[2]);
    }

    #[test]
    fn matching_covers_all_nodes() {
        let mut edges = Vec::new();
        for a in 0..30u32 {
            edges.push((a, (a + 1) % 30, 1.0 + (a % 3) as f64));
        }
        let g = AdjacencyGraph::from_edges(30, edges);
        let (map, n) = heavy_edge_matching(&g);
        assert!((15..=30).contains(&n));
        assert!(map.iter().all(|&c| (c as usize) < n));
    }

    /// The precomputed-argmax parallel matching replays the serial mate
    /// array byte-for-byte at every thread count, across messy weighted
    /// graphs where the unmatched-fallback rescan genuinely fires.
    #[test]
    fn threaded_matching_matches_serial_byte_for_byte() {
        for n in [30usize, 64, 111] {
            let mut edges = Vec::new();
            let mut x = 0x9e3779b97f4a7c15u64;
            for a in 0..n as NodeId {
                for hop in [1usize, 2, 5, 9] {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let b = ((a as usize + hop) % n) as NodeId;
                    if a != b {
                        // Few distinct weights → many exact ties, so the
                        // tie-break and the fallback path both exercise.
                        edges.push((a, b, 1.0 + ((x >> 60) % 3) as f64));
                    }
                }
            }
            let g = AdjacencyGraph::from_edges(n, edges);
            let (serial_map, serial_n) = heavy_edge_matching(&g);
            for threads in [2usize, 3, 8] {
                let mut arena = CoarsenArena::new();
                let (map, coarse_n) = heavy_edge_matching_threaded(&g, &mut arena, threads);
                assert_eq!(map, serial_map, "n={n} threads={threads}");
                assert_eq!(coarse_n, serial_n);
            }
        }
    }

    /// The threaded hierarchy equals the serial one level by level.
    #[test]
    fn threaded_coarsening_matches_serial() {
        let mut edges = Vec::new();
        for a in 0..96u32 {
            edges.push((a, (a + 1) % 96, 1.0 + (a % 4) as f64 * 0.5));
            edges.push((a, (a + 11) % 96, 0.75));
        }
        let g = AdjacencyGraph::from_edges(96, edges);
        let serial = coarsen(g.clone(), vec![1.0; 96], 8);
        for threads in [2usize, 8] {
            let par = coarsen_threaded(g.clone(), vec![1.0; 96], 8, threads);
            assert_eq!(par.len(), serial.len(), "{threads} threads");
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.fine_to_coarse, b.fine_to_coarse);
                assert_eq!(a.graph.node_count(), b.graph.node_count());
                let wa: Vec<u64> = a.vertex_weights.iter().map(|w| w.to_bits()).collect();
                let wb: Vec<u64> = b.vertex_weights.iter().map(|w| w.to_bits()).collect();
                assert_eq!(wa, wb, "{threads} threads");
            }
        }
    }

    #[test]
    fn coarsening_preserves_total_weight() {
        let mut edges = Vec::new();
        for a in 0..64u32 {
            edges.push((a, (a + 1) % 64, 1.0));
            edges.push((a, (a + 7) % 64, 0.5));
        }
        let g = AdjacencyGraph::from_edges(64, edges);
        let total = g.total_weight();
        let levels = coarsen(g, vec![1.0; 64], 8);
        assert!(levels.len() > 1, "must coarsen at least once");
        for level in &levels {
            assert!((level.graph.total_weight() - total).abs() < 1e-9);
            let wsum: f64 = level.vertex_weights.iter().sum();
            assert!((wsum - 64.0).abs() < 1e-9, "vertex weight is conserved");
        }
        let last = levels.last().unwrap();
        assert!(last.graph.node_count() <= 32);
    }

    #[test]
    fn isolated_nodes_survive_coarsening() {
        let g = AdjacencyGraph::from_edges(5, vec![(0u32, 1, 1.0)]);
        let levels = coarsen(g, vec![1.0; 5], 1);
        // Nodes 2,3,4 have no edges; matching self-matches them and the
        // reduction stalls, terminating the loop.
        let last = levels.last().unwrap();
        assert!(last.graph.node_count() >= 4);
    }

    #[test]
    fn projection_maps_compose() {
        let mut edges = Vec::new();
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                if (a + b) % 7 == 0 {
                    edges.push((a, b, 1.0 + (a % 5) as f64));
                }
            }
        }
        let g = AdjacencyGraph::from_edges(40, edges);
        let levels = coarsen(g, vec![1.0; 40], 5);
        for i in 1..levels.len() {
            let map = levels[i].fine_to_coarse.as_ref().unwrap();
            assert_eq!(map.len(), levels[i - 1].graph.node_count());
            assert!(map
                .iter()
                .all(|&c| (c as usize) < levels[i].graph.node_count()));
        }
    }
}
