//! A METIS-style multilevel k-way graph partitioner.
//!
//! The graph-based baselines of the paper (\[17\] Fynn & Pedone, \[18\] Mizrahi
//! & Rottenstreich, \[19\] BrokerChain) all use METIS (Karypis & Kumar) as
//! their backbone allocation algorithm. METIS itself is a C library, so this
//! crate re-implements its three classic phases (§II-C of the paper) from
//! scratch:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses the graph
//!    until it is small.
//! 2. **Initial partitioning** — greedy graph growing produces a `k`-way
//!    partition of the coarsest graph, balanced by *vertex weight*.
//! 3. **Uncoarsening + refinement** — the partition is projected back level
//!    by level; at each level a boundary FM pass moves nodes to reduce edge
//!    cut subject to the balance constraint.
//!
//! Faithful to the paper's critique, balance is measured on **vertex
//! weights**, not blockchain workload — that mismatch (plus no η-awareness)
//! is exactly why TxAllo outperforms it on workload balance and throughput.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod bisection;
pub mod coarsen;
pub mod initial;
pub mod refine;

pub use bisection::recursive_bisection_partition;
pub use coarsen::{
    coarsen, coarsen_threaded, heavy_edge_matching, heavy_edge_matching_in,
    heavy_edge_matching_threaded, CoarseLevel, CoarsenArena,
};
pub use initial::greedy_growing_partition;
pub use refine::{
    edge_cut, fm_refine, fm_refine_threaded, fm_refine_with_targets,
    fm_refine_with_targets_threaded,
};

use txallo_graph::{AdjacencyGraph, NodeId, WeightedGraph};

/// Floor applied to vertex strengths when they become balance weights, so
/// isolated (zero-strength) nodes keep a nonzero weight and ratio
/// denominators stay positive. A magnitude guard, not a gain tolerance —
/// tie-breaking is `txallo_louvain::GAIN_EPS` territory (contract D2).
// txallo-lint: allow(D2-eps-literal) — named, documented magnitude floor; the one sanctioned definition site in this crate
pub(crate) const STRENGTH_FLOOR: f64 = 1e-9;

/// Floor on the gain/strength ratio denominator in the greedy growers
/// (initial partitioning and bisection seeding). Smaller than
/// [`STRENGTH_FLOOR`] because it guards a division, not a weight; the
/// value is preserved exactly — changing it changes growth trajectories.
// txallo-lint: allow(D2-eps-literal) — named, documented divide-by-zero guard; value pinned by the golden suites
pub(crate) const RATIO_FLOOR: f64 = 1e-12;

/// How vertices are weighted for the balance constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VertexWeighting {
    /// Every account weighs 1 (balance = equal account counts).
    Unit,
    /// An account weighs its weighted degree (balance ≈ equal transaction
    /// involvement). This is the closest analogue of how the blockchain
    /// partitioning literature feeds account graphs to METIS.
    #[default]
    Strength,
}

/// Configuration for [`metis_partition`].
#[derive(Debug, Clone)]
pub struct MetisConfig {
    /// Number of parts `k`.
    pub parts: usize,
    /// Allowed imbalance: a part may hold at most `balance_factor ×` the
    /// average vertex weight (METIS's `ub` parameter, default 1.05).
    pub balance_factor: f64,
    /// Stop coarsening when the graph has at most this many nodes
    /// (clamped below by `20 × parts`).
    pub coarsen_target: usize,
    /// Maximum FM refinement passes per level.
    pub refine_passes: usize,
    /// Vertex weighting scheme.
    pub weighting: VertexWeighting,
    /// Worker threads for matching and refinement (determinism rule D5:
    /// a performance knob, never an algorithm input — the partition is
    /// bit-identical at every count, `<= 1` is the exact serial path).
    /// Defaults to the `TXALLO_THREADS` override.
    pub threads: usize,
}

impl MetisConfig {
    /// Reasonable defaults for `k` parts.
    pub fn new(parts: usize) -> Self {
        Self {
            parts,
            balance_factor: 1.05,
            coarsen_target: 2_000,
            refine_passes: 8,
            weighting: VertexWeighting::default(),
            threads: txallo_graph::par::threads_from_env(),
        }
    }

    /// Returns the config with the worker-thread knob set.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Result of a multilevel partition run.
#[derive(Debug, Clone)]
pub struct MetisResult {
    /// Part id per node, in `0..parts`.
    pub parts: Vec<u32>,
    /// Total weight of edges crossing parts.
    pub edge_cut: f64,
    /// Number of coarsening levels used.
    pub levels: usize,
}

/// Partitions `graph` into `config.parts` parts.
pub fn metis_partition(graph: &(impl WeightedGraph + Sync), config: &MetisConfig) -> MetisResult {
    assert!(config.parts > 0, "parts must be positive");
    let n = graph.node_count();
    if n == 0 {
        return MetisResult {
            parts: Vec::new(),
            edge_cut: 0.0,
            levels: 0,
        };
    }
    if config.parts == 1 {
        return MetisResult {
            parts: vec![0; n],
            edge_cut: 0.0,
            levels: 0,
        };
    }

    let base = AdjacencyGraph::from_graph(graph);
    let vertex_weights: Vec<f64> = match config.weighting {
        VertexWeighting::Unit => vec![1.0; n],
        VertexWeighting::Strength => (0..n as NodeId)
            .map(|v| graph.strength(v).max(STRENGTH_FLOOR))
            .collect(),
    };

    // Phase 1: coarsen.
    let coarsen_floor = config.coarsen_target.max(20 * config.parts);
    let hierarchy = coarsen_threaded(base, vertex_weights, coarsen_floor, config.threads);
    let levels = hierarchy.len();
    let coarsest = hierarchy
        .last()
        .expect("hierarchy always has the base level"); // txallo-lint: allow(lib-unwrap) — coarsen() always returns at least the base level

    // Phase 2: initial partition of the coarsest graph.
    let mut parts = greedy_growing_partition(
        &coarsest.graph,
        &coarsest.vertex_weights,
        config.parts,
        config.balance_factor,
    );
    fm_refine_threaded(
        &coarsest.graph,
        &coarsest.vertex_weights,
        &mut parts,
        config.parts,
        config.balance_factor,
        config.refine_passes,
        config.threads,
    );

    // Phase 3: project back and refine at every level.
    for level in (0..levels - 1).rev() {
        let fine = &hierarchy[level];
        let coarse_map = hierarchy[level + 1]
            .fine_to_coarse
            .as_ref()
            .expect("non-base levels store their projection map"); // txallo-lint: allow(lib-unwrap) — every non-base level is built by coarsen() with its projection map populated
        let mut fine_parts = vec![0u32; fine.graph.node_count()];
        for (v, p) in fine_parts.iter_mut().enumerate() {
            *p = parts[coarse_map[v] as usize];
        }
        parts = fine_parts;
        fm_refine_threaded(
            &fine.graph,
            &fine.vertex_weights,
            &mut parts,
            config.parts,
            config.balance_factor,
            config.refine_passes,
            config.threads,
        );
    }

    let cut = edge_cut(&hierarchy[0].graph, &parts);
    MetisResult {
        parts,
        edge_cut: cut,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques(bridge: f64) -> AdjacencyGraph {
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b, 1.0));
                edges.push((a + 6, b + 6, 1.0));
            }
        }
        edges.push((0, 6, bridge));
        AdjacencyGraph::from_edges(12, edges)
    }

    #[test]
    fn bisects_two_cliques_along_the_bridge() {
        let g = two_cliques(0.1);
        let r = metis_partition(&g, &MetisConfig::new(2));
        assert_eq!(r.parts.len(), 12);
        for v in 1..6 {
            assert_eq!(r.parts[v], r.parts[0], "clique A must stay together");
            assert_eq!(r.parts[v + 6], r.parts[6], "clique B must stay together");
        }
        assert_ne!(r.parts[0], r.parts[6]);
        assert!(
            (r.edge_cut - 0.1).abs() < 1e-9,
            "only the bridge is cut, got {}",
            r.edge_cut
        );
    }

    #[test]
    fn one_part_is_trivial() {
        let g = two_cliques(1.0);
        let r = metis_partition(&g, &MetisConfig::new(1));
        assert!(r.parts.iter().all(|&p| p == 0));
        assert_eq!(r.edge_cut, 0.0);
    }

    #[test]
    fn respects_part_count() {
        let mut edges = Vec::new();
        for a in 0..100u32 {
            edges.push((a, (a + 1) % 100, 1.0));
        }
        let g = AdjacencyGraph::from_edges(100, edges);
        for k in [2usize, 3, 5, 8] {
            let r = metis_partition(&g, &MetisConfig::new(k));
            let used: std::collections::HashSet<u32> = r.parts.iter().copied().collect();
            assert!(used.len() <= k);
            assert!(used.iter().all(|&p| (p as usize) < k));
            // A ring splits into k contiguous arcs: cut = k edges (roughly).
            assert!(
                r.edge_cut <= 2.0 * k as f64 + 1.0,
                "cut {} too high for k={k}",
                r.edge_cut
            );
        }
    }

    #[test]
    fn balances_unit_weights() {
        // 4 cliques of 8 nodes, lightly interconnected; k = 4.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let b = c * 8;
            for i in 0..8 {
                for j in (i + 1)..8 {
                    edges.push((b + i, b + j, 1.0));
                }
            }
            edges.push((b, ((c + 1) % 4) * 8, 0.1));
        }
        let g = AdjacencyGraph::from_edges(32, edges);
        let mut cfg = MetisConfig::new(4);
        cfg.weighting = VertexWeighting::Unit;
        let r = metis_partition(&g, &cfg);
        let mut counts = [0usize; 4];
        for &p in &r.parts {
            counts[p as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 8, "each part must hold one clique, got {counts:?}");
        }
    }

    #[test]
    fn deterministic() {
        let g = two_cliques(0.5);
        let a = metis_partition(&g, &MetisConfig::new(3));
        let b = metis_partition(&g, &MetisConfig::new(3));
        assert_eq!(a.parts, b.parts);
        assert_eq!(a.edge_cut, b.edge_cut);
    }

    #[test]
    fn empty_graph() {
        let g = AdjacencyGraph::from_edges(0, Vec::new());
        let r = metis_partition(&g, &MetisConfig::new(4));
        assert!(r.parts.is_empty());
    }
}
