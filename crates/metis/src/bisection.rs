//! Recursive bisection — the strategy real METIS uses for k-way
//! partitioning (`pmetis`): split the graph in two (with proportional
//! targets when `k` is odd), recurse on each side. Compared to the direct
//! k-way driver in [`crate::metis_partition`], recursive bisection does
//! `⌈log₂ k⌉` full multilevel passes, which is what gives real METIS its
//! characteristic running-time growth with `k` (§VI-B6 of the paper).

use txallo_graph::{AdjacencyGraph, DenseIndexMap, NodeId, WeightedGraph};

use crate::coarsen::coarsen_threaded;
use crate::refine::fm_refine_with_targets_threaded;
use crate::MetisConfig;

/// Grows one region to `frac` of the total vertex weight (2-way greedy
/// graph growing); everything else is part 1.
fn grow_bisection(graph: &AdjacencyGraph, vertex_weights: &[f64], frac: f64) -> Vec<u32> {
    let n = graph.node_count();
    let mut parts = vec![1u32; n];
    if n == 0 {
        return parts;
    }
    let total: f64 = vertex_weights.iter().sum();
    let target = total * frac;

    let mut by_weight: Vec<NodeId> = (0..n as NodeId).collect();
    by_weight.sort_unstable_by(|&a, &b| {
        vertex_weights[b as usize]
            .partial_cmp(&vertex_weights[a as usize])
            .expect("finite weights") // txallo-lint: allow(lib-unwrap) — vertex weights are finite strengths (floored positive), so partial_cmp is total
            .then(a.cmp(&b))
    });

    let seed = by_weight[0];
    parts[seed as usize] = 0;
    let mut region_weight = vertex_weights[seed as usize];
    // Dense frontier state: accumulated gain per node plus a frontier list
    // (entries for nodes later absorbed into the region go stale and are
    // skipped by the `parts` check — no hash map, no removals).
    let mut gain = vec![0.0f64; n];
    let mut in_frontier = vec![false; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    graph.for_each_neighbor(seed, |u, w| {
        gain[u as usize] += w;
        if !in_frontier[u as usize] {
            in_frontier[u as usize] = true;
            frontier.push(u);
        }
    });

    let mut cursor = 1usize;
    while region_weight < target {
        // Best frontier candidate: largest gain, then largest gain/strength
        // ratio, then smallest id (same policy as the k-way grower).
        let mut best: Option<(NodeId, f64, f64)> = None;
        for &u in &frontier {
            if parts[u as usize] == 0 {
                continue;
            }
            let g = gain[u as usize];
            let ratio = g / graph.strength(u).max(crate::RATIO_FLOOR);
            let better = match best {
                None => true,
                Some((bu, bg, br)) => {
                    g > bg || (g == bg && (ratio > br || (ratio == br && u < bu)))
                }
            };
            if better {
                best = Some((u, g, ratio));
            }
        }
        let next = match best {
            Some((u, _, _)) => u,
            None => {
                // Disconnected frontier: pull the next heaviest unassigned.
                while cursor < n && parts[by_weight[cursor] as usize] == 0 {
                    cursor += 1;
                }
                if cursor >= n {
                    break;
                }
                by_weight[cursor]
            }
        };
        parts[next as usize] = 0;
        region_weight += vertex_weights[next as usize];
        graph.for_each_neighbor(next, |u, w| {
            if parts[u as usize] == 1 {
                gain[u as usize] += w;
                if !in_frontier[u as usize] {
                    in_frontier[u as usize] = true;
                    frontier.push(u);
                }
            }
        });
    }
    parts
}

/// Multilevel 2-way partition of `graph` with proportional targets
/// `frac : (1 − frac)`.
fn multilevel_bisect(
    graph: AdjacencyGraph,
    vertex_weights: Vec<f64>,
    frac: f64,
    config: &MetisConfig,
) -> Vec<u32> {
    let total: f64 = vertex_weights.iter().sum();
    let targets = [total * frac, total * (1.0 - frac)];
    let floor = config.coarsen_target.clamp(40, 4_000);
    let hierarchy = coarsen_threaded(graph, vertex_weights, floor, config.threads);
    let coarsest = hierarchy.last().expect("base level exists"); // txallo-lint: allow(lib-unwrap) — coarsen() always returns at least the base level

    let mut parts = grow_bisection(&coarsest.graph, &coarsest.vertex_weights, frac);
    fm_refine_with_targets_threaded(
        &coarsest.graph,
        &coarsest.vertex_weights,
        &mut parts,
        &targets,
        config.balance_factor,
        config.refine_passes,
        config.threads,
    );
    for level in (0..hierarchy.len() - 1).rev() {
        let fine = &hierarchy[level];
        let map = hierarchy[level + 1]
            .fine_to_coarse
            .as_ref()
            .expect("projection map"); // txallo-lint: allow(lib-unwrap) — every non-base level is built by coarsen() with its projection map populated
        let mut fine_parts = vec![0u32; fine.graph.node_count()];
        for (v, p) in fine_parts.iter_mut().enumerate() {
            *p = parts[map[v] as usize];
        }
        parts = fine_parts;
        fm_refine_with_targets_threaded(
            &fine.graph,
            &fine.vertex_weights,
            &mut parts,
            &targets,
            config.balance_factor,
            config.refine_passes,
            config.threads,
        );
    }
    parts
}

/// Recursive-bisection k-way partitioning over a node subset of the base
/// graph. Part ids `offset..offset + k` are written into `out`.
#[allow(clippy::too_many_arguments)] // internal recursion plumbing, not an API
fn recurse(
    base: &AdjacencyGraph,
    vertex_weights: &[f64],
    nodes: Vec<NodeId>,
    k: usize,
    offset: u32,
    out: &mut [u32],
    config: &MetisConfig,
    local_of: &mut DenseIndexMap,
) {
    if k <= 1 || nodes.len() <= 1 {
        for &v in &nodes {
            out[v as usize] = offset;
        }
        return;
    }
    // Build the induced subgraph with dense local ids (the stamped index
    // map is shared across the whole recursion — no per-step allocation).
    local_of.begin(base.node_count());
    for (i, &v) in nodes.iter().enumerate() {
        local_of.insert(v, i as u32);
    }
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    let mut weights = Vec::with_capacity(nodes.len());
    for (i, &v) in nodes.iter().enumerate() {
        weights.push(vertex_weights[v as usize]);
        let loop_w = base.self_loop(v);
        if loop_w > 0.0 {
            edges.push((i as NodeId, i as NodeId, loop_w));
        }
        base.for_each_neighbor(v, |u, w| {
            if u > v {
                if let Some(j) = local_of.get(u) {
                    edges.push((i as NodeId, j, w));
                }
            }
        });
    }
    let induced = AdjacencyGraph::from_edges(nodes.len(), edges);

    let k_left = k.div_ceil(2);
    let frac = k_left as f64 / k as f64;
    let halves = multilevel_bisect(induced, weights, frac, config);

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &v) in nodes.iter().enumerate() {
        if halves[i] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    recurse(
        base,
        vertex_weights,
        left,
        k_left,
        offset,
        out,
        config,
        local_of,
    );
    recurse(
        base,
        vertex_weights,
        right,
        k - k_left,
        offset + k_left as u32,
        out,
        config,
        local_of,
    );
}

/// K-way partitioning by recursive bisection (pmetis-style).
pub fn recursive_bisection_partition(
    graph: &(impl WeightedGraph + Sync),
    config: &MetisConfig,
) -> crate::MetisResult {
    assert!(config.parts > 0, "parts must be positive");
    let n = graph.node_count();
    if n == 0 {
        return crate::MetisResult {
            parts: Vec::new(),
            edge_cut: 0.0,
            levels: 0,
        };
    }
    let base = AdjacencyGraph::from_graph(graph);
    let vertex_weights: Vec<f64> = match config.weighting {
        crate::VertexWeighting::Unit => vec![1.0; n],
        crate::VertexWeighting::Strength => (0..n as NodeId)
            .map(|v| graph.strength(v).max(crate::STRENGTH_FLOOR))
            .collect(),
    };
    let mut parts = vec![0u32; n];
    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    let mut local_of = DenseIndexMap::new();
    recurse(
        &base,
        &vertex_weights,
        nodes,
        config.parts,
        0,
        &mut parts,
        config,
        &mut local_of,
    );
    let cut = crate::refine::edge_cut(&base, &parts);
    let levels = (config.parts as f64).log2().ceil() as usize;
    crate::MetisResult {
        parts,
        edge_cut: cut,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metis_partition;

    fn cliques(count: u32, size: u32, bridge: f64) -> AdjacencyGraph {
        let mut edges = Vec::new();
        for c in 0..count {
            let b = c * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    edges.push((b + i, b + j, 1.0));
                }
            }
            edges.push((b, ((c + 1) % count) * size, bridge));
        }
        AdjacencyGraph::from_edges((count * size) as usize, edges)
    }

    #[test]
    fn bisects_two_cliques() {
        let g = cliques(2, 6, 0.1);
        let r = recursive_bisection_partition(&g, &MetisConfig::new(2));
        for v in 1..6 {
            assert_eq!(r.parts[v], r.parts[0]);
            assert_eq!(r.parts[v + 6], r.parts[6]);
        }
        assert_ne!(r.parts[0], r.parts[6]);
        assert!(r.edge_cut <= 0.3, "cut {}", r.edge_cut);
    }

    #[test]
    fn handles_odd_k_with_proportional_targets() {
        // 3 equal cliques, k = 3: each part should hold exactly one clique.
        let g = cliques(3, 8, 0.05);
        let mut cfg = MetisConfig::new(3);
        cfg.weighting = crate::VertexWeighting::Unit;
        let r = recursive_bisection_partition(&g, &cfg);
        let mut counts = [0usize; 3];
        for &p in &r.parts {
            assert!((p as usize) < 3);
            counts[p as usize] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 8, "parts must be balanced: {counts:?}");
        }
    }

    #[test]
    fn quality_comparable_to_direct_kway() {
        let g = cliques(8, 6, 0.2);
        let cfg = MetisConfig::new(8);
        let rb = recursive_bisection_partition(&g, &cfg);
        let kw = metis_partition(&g, &cfg);
        // Both should find near-clique partitions; RB within 2× of direct.
        assert!(
            rb.edge_cut <= kw.edge_cut * 2.0 + 2.0,
            "RB cut {} vs k-way cut {}",
            rb.edge_cut,
            kw.edge_cut
        );
    }

    #[test]
    fn deterministic() {
        let g = cliques(4, 5, 0.3);
        let a = recursive_bisection_partition(&g, &MetisConfig::new(4));
        let b = recursive_bisection_partition(&g, &MetisConfig::new(4));
        assert_eq!(a.parts, b.parts);
    }

    #[test]
    fn k_one_and_empty() {
        let g = cliques(2, 4, 0.1);
        let r = recursive_bisection_partition(&g, &MetisConfig::new(1));
        assert!(r.parts.iter().all(|&p| p == 0));
        let empty = AdjacencyGraph::from_edges(0, Vec::new());
        let r = recursive_bisection_partition(&empty, &MetisConfig::new(4));
        assert!(r.parts.is_empty());
    }
}
