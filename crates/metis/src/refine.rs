//! Boundary FM refinement and the edge-cut objective.
//!
//! ## Parallel refinement (determinism rule D5)
//!
//! [`fm_refine_with_targets_threaded`] parallelizes the expensive part of
//! the boundary pass — gathering each vertex's per-part link weights —
//! without touching the decision sequence: at every pass boundary the
//! stale per-vertex link caches are rebuilt concurrently over canonical
//! row ranges (each cache a pure function of the vertex's row and the
//! frozen parts, written into its own slot), per-chunk boundary counts
//! merge through `par::reduce_tree` (integer adds, exact under any
//! association), and the move loop itself stays serial, re-gathering
//! inline exactly where an earlier in-pass move dirtied a cache. The
//! selected move sequence is therefore byte-identical to the serial
//! pass at every thread count, and `threads <= 1` *is* the serial code.

use txallo_graph::par::{entry_balanced_split, for_each_chunk_mut, reduce_tree, resolve_threads};
use txallo_graph::{fit_u32, AdjacencyGraph, DenseAccumulator, NodeId, WeightedGraph};

/// Minimum cut improvement for an FM move to count as a gain. A
/// magnitude floor against float dust from the link accumulator, not a
/// tie-break tolerance; the value is preserved exactly — raising it
/// changes which moves fire and therefore the refined partitions.
// txallo-lint: allow(D2-eps-literal) — named, documented gain floor; value pinned by the metis golden/property tests
const FM_GAIN_MIN: f64 = 1e-12;

/// Total weight of edges whose endpoints lie in different parts.
pub fn edge_cut(graph: &AdjacencyGraph, parts: &[u32]) -> f64 {
    let mut cut = 0.0;
    for v in 0..graph.node_count() as NodeId {
        graph.for_each_neighbor(v, |u, w| {
            if v < u && parts[v as usize] != parts[u as usize] {
                cut += w;
            }
        });
    }
    cut
}

/// Simplified boundary Fiduccia–Mattheyses refinement.
///
/// Each pass sweeps the boundary vertices in ascending id order and greedily
/// moves a vertex to the adjacent part with the largest positive cut
/// reduction, subject to the balance constraint (`target × balance_factor`
/// cap on the destination, and the source must not become "too empty" —
/// below `target × (2 − balance_factor)` — unless it is over target).
/// Passes repeat until no move improves the cut or `max_passes` is reached.
///
/// This forgoes the full FM gain-bucket/rollback machinery; for the graph
/// sizes the blockchain baseline works on, greedy boundary passes converge
/// to comparable cuts and stay deterministic.
pub fn fm_refine(
    graph: &AdjacencyGraph,
    vertex_weights: &[f64],
    parts: &mut [u32],
    k: usize,
    balance_factor: f64,
    max_passes: usize,
) {
    let total: f64 = vertex_weights.iter().sum();
    let targets = vec![total / k.max(1) as f64; k];
    fm_refine_with_targets(
        graph,
        vertex_weights,
        parts,
        &targets,
        balance_factor,
        max_passes,
    );
}

/// [`fm_refine`] generalized to per-part weight targets (used by the
/// recursive-bisection driver, where a 2-way split may be `⌈k/2⌉ : ⌊k/2⌋`).
pub fn fm_refine_with_targets(
    graph: &AdjacencyGraph,
    vertex_weights: &[f64],
    parts: &mut [u32],
    targets: &[f64],
    balance_factor: f64,
    max_passes: usize,
) {
    let n = graph.node_count();
    let k = targets.len();
    if n == 0 || k <= 1 {
        return;
    }
    let caps: Vec<f64> = targets.iter().map(|t| t * balance_factor).collect();
    let floors: Vec<f64> = targets.iter().map(|t| t * (2.0 - balance_factor)).collect();

    let mut part_weight = vec![0.0f64; k];
    for (v, &p) in parts.iter().enumerate() {
        part_weight[p as usize] += vertex_weights[v];
    }

    // Dense per-part link weights, reused across every vertex visit (no
    // hashing or allocation on the refinement hot path).
    let mut link = DenseAccumulator::new();
    for _ in 0..max_passes {
        let mut improved = false;
        for v in 0..n as NodeId {
            let from = parts[v as usize];
            link.begin(k);
            let mut is_boundary = false;
            graph.for_each_neighbor(v, |u, w| {
                let pu = parts[u as usize];
                if pu != from {
                    is_boundary = true;
                }
                link.add(pu, w);
            });
            if !is_boundary {
                continue;
            }
            let w_v = vertex_weights[v as usize];
            let internal = link.get(from);
            // Candidate destinations in ascending part order (determinism).
            link.sort_touched();

            let mut best: Option<(u32, f64)> = None;
            for (to, external) in link.entries() {
                if to == from {
                    continue;
                }
                let gain = external - internal;
                if gain <= FM_GAIN_MIN {
                    continue;
                }
                // A move is admissible if the destination stays within the
                // cap, or if it still strictly improves the balance (moving
                // from a heavier to a lighter part) — the escape hatch that
                // keeps refinement live when parts sit exactly at the cap.
                let dest_ok = part_weight[to as usize] + w_v <= caps[to as usize]
                    || part_weight[to as usize] + w_v < part_weight[from as usize];
                if !dest_ok {
                    continue;
                }
                if part_weight[from as usize] - w_v < floors[from as usize]
                    && part_weight[from as usize] <= targets[from as usize]
                {
                    continue;
                }
                match best {
                    Some((bp, bg)) if gain < bg || (gain == bg && to > bp) => {}
                    _ => best = Some((to, gain)),
                }
            }
            if let Some((to, _)) = best {
                parts[v as usize] = to;
                part_weight[from as usize] -= w_v;
                part_weight[to as usize] += w_v;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

/// [`fm_refine`] with a thread-count knob (see the module docs):
/// `threads <= 1` is the exact serial code path, more threads rebuild
/// the per-vertex link caches in parallel at every pass boundary and
/// replay the identical serial move sequence.
pub fn fm_refine_threaded(
    graph: &AdjacencyGraph,
    vertex_weights: &[f64],
    parts: &mut [u32],
    k: usize,
    balance_factor: f64,
    max_passes: usize,
    threads: usize,
) {
    let total: f64 = vertex_weights.iter().sum();
    let targets = vec![total / k.max(1) as f64; k];
    fm_refine_with_targets_threaded(
        graph,
        vertex_weights,
        parts,
        &targets,
        balance_factor,
        max_passes,
        threads,
    );
}

/// [`fm_refine_with_targets`] with a thread-count knob — the parallel
/// boundary pass of the module docs. Byte-identical to the serial
/// refinement at every thread count (pinned by the tests below and the
/// metis proptests); `threads <= 1` *is* [`fm_refine_with_targets`].
pub fn fm_refine_with_targets_threaded(
    graph: &AdjacencyGraph,
    vertex_weights: &[f64],
    parts: &mut [u32],
    targets: &[f64],
    balance_factor: f64,
    max_passes: usize,
    threads: usize,
) {
    let workers = resolve_threads(threads);
    if workers <= 1 {
        return fm_refine_with_targets(
            graph,
            vertex_weights,
            parts,
            targets,
            balance_factor,
            max_passes,
        );
    }
    let n = graph.node_count();
    let k = targets.len();
    if n == 0 || k <= 1 {
        return;
    }
    let caps: Vec<f64> = targets.iter().map(|t| t * balance_factor).collect();
    let floors: Vec<f64> = targets.iter().map(|t| t * (2.0 - balance_factor)).collect();

    let mut part_weight = vec![0.0f64; k];
    for (v, &p) in parts.iter().enumerate() {
        part_weight[p as usize] += vertex_weights[v];
    }

    // Canonical row ranges for the cache refresh (house pattern: the
    // cache slots are position-identical pure functions of row + frozen
    // parts, so any partition reproduces the serial bits).
    let mut deg_prefix = vec![0u32; n + 1];
    for v in 0..n {
        deg_prefix[v + 1] = deg_prefix[v] + fit_u32(graph.neighbor_count(v as NodeId));
    }
    let bounds = entry_balanced_split(&deg_prefix, workers);
    let chunks = bounds.len() - 1;

    // Per-vertex link cache: `(part, weight)` entries ascending by part,
    // exactly what the serial gather sees. Stamps track staleness: a
    // cache is valid while no neighbor has moved since it was built.
    let mut cache: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let mut cached_at = vec![0u64; n];
    let mut dirty = vec![1u64; n];
    let mut stamp: u64 = 1;

    let mut link = DenseAccumulator::new();
    let mut chunk_scratch: Vec<(DenseAccumulator, u64)> =
        (0..chunks).map(|_| (DenseAccumulator::new(), 0)).collect();

    for _ in 0..max_passes {
        // Pass-boundary refresh: rebuild every stale cache in parallel,
        // and count the boundary vertices per chunk while we are there.
        for s in &mut chunk_scratch {
            s.1 = 0;
        }
        {
            let parts_ref: &[u32] = parts;
            let cached_at_ref: &[u64] = &cached_at;
            let dirty_ref: &[u64] = &dirty;
            for_each_chunk_mut(
                &bounds,
                &mut cache,
                &mut chunk_scratch,
                |lo, window, (acc, boundary)| {
                    for (i, slot) in window.iter_mut().enumerate() {
                        let v = lo + i;
                        if dirty_ref[v] > cached_at_ref[v] {
                            acc.begin(k);
                            graph.for_each_neighbor(v as NodeId, |u, w| {
                                acc.add(parts_ref[u as usize], w);
                            });
                            acc.sort_touched();
                            slot.clear();
                            slot.extend(acc.entries());
                        }
                        let from = parts_ref[v];
                        if slot.iter().any(|&(p, _)| p != from) {
                            *boundary += 1;
                        }
                    }
                },
            );
        }
        for v in 0..n {
            if dirty[v] > cached_at[v] {
                cached_at[v] = stamp;
            }
        }
        // Exact early exit through the fixed reduction tree: with no
        // boundary vertex anywhere, the serial pass would scan, move
        // nothing and stop — skipping the scan leaves identical state.
        let boundary_total =
            reduce_tree(chunk_scratch.iter().map(|s| s.1).collect(), |a, b| a + b).unwrap_or(0);
        if boundary_total == 0 {
            break;
        }

        let mut improved = false;
        for v in 0..n {
            let from = parts[v];
            if dirty[v] > cached_at[v] {
                // An earlier move this pass touched a neighbor: re-gather
                // inline — the exact serial gather at the current parts.
                link.begin(k);
                graph.for_each_neighbor(v as NodeId, |u, w| link.add(parts[u as usize], w));
                link.sort_touched();
                cache[v].clear();
                cache[v].extend(link.entries());
                cached_at[v] = stamp;
            }
            let entries = &cache[v];
            if !entries.iter().any(|&(p, _)| p != from) {
                continue;
            }
            let w_v = vertex_weights[v];
            let internal = entries.iter().find(|e| e.0 == from).map_or(0.0, |e| e.1);

            let mut best: Option<(u32, f64)> = None;
            for &(to, external) in entries {
                if to == from {
                    continue;
                }
                let gain = external - internal;
                if gain <= FM_GAIN_MIN {
                    continue;
                }
                let dest_ok = part_weight[to as usize] + w_v <= caps[to as usize]
                    || part_weight[to as usize] + w_v < part_weight[from as usize];
                if !dest_ok {
                    continue;
                }
                if part_weight[from as usize] - w_v < floors[from as usize]
                    && part_weight[from as usize] <= targets[from as usize]
                {
                    continue;
                }
                match best {
                    Some((bp, bg)) if gain < bg || (gain == bg && to > bp) => {}
                    _ => best = Some((to, gain)),
                }
            }
            if let Some((to, _)) = best {
                parts[v] = to;
                part_weight[from as usize] -= w_v;
                part_weight[to as usize] += w_v;
                stamp += 1;
                graph.for_each_neighbor(v as NodeId, |u, _| dirty[u as usize] = stamp);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques_graph() -> AdjacencyGraph {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b, 1.0));
                edges.push((a + 4, b + 4, 1.0));
            }
        }
        edges.push((0, 4, 0.1));
        AdjacencyGraph::from_edges(8, edges)
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)]);
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 3.0);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0.0);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 9.0);
    }

    #[test]
    fn refine_fixes_a_bad_bisection() {
        let g = two_cliques_graph();
        // Start with one node on the wrong side.
        let mut parts = vec![0, 0, 0, 1, 1, 1, 1, 0];
        let before = edge_cut(&g, &parts);
        fm_refine(&g, &[1.0; 8], &mut parts, 2, 1.3, 8);
        let after = edge_cut(&g, &parts);
        assert!(
            after < before,
            "refinement must reduce cut: {before} -> {after}"
        );
        assert!(
            (after - 0.1).abs() < 1e-9,
            "optimal cut is the bridge, got {after}"
        );
    }

    #[test]
    fn refine_respects_capacity() {
        // Star: center 0 + 6 leaves; k=2 with tight balance. Refinement must
        // not dump everything into one part.
        let edges: Vec<_> = (1..7u32).map(|v| (0u32, v, 1.0)).collect();
        let g = AdjacencyGraph::from_edges(7, edges);
        let mut parts = vec![0, 0, 0, 0, 1, 1, 1];
        fm_refine(&g, &[1.0; 7], &mut parts, 2, 1.2, 8);
        let heavy = parts.iter().filter(|&&p| p == 0).count();
        assert!(heavy <= 5, "balance cap violated: {parts:?}");
    }

    #[test]
    fn refine_is_deterministic_and_terminates() {
        let g = two_cliques_graph();
        let mut p1 = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let mut p2 = p1.clone();
        fm_refine(&g, &[1.0; 8], &mut p1, 2, 1.3, 50);
        fm_refine(&g, &[1.0; 8], &mut p2, 2, 1.3, 50);
        assert_eq!(p1, p2);
    }

    /// Ordered-map reference of the boundary pass: identical admission
    /// rules and tie-breaks, `BTreeMap` gathering. The dense-scratch
    /// implementation must produce byte-identical parts.
    fn reference_refine(
        graph: &AdjacencyGraph,
        vertex_weights: &[f64],
        parts: &mut [u32],
        targets: &[f64],
        balance_factor: f64,
        max_passes: usize,
    ) {
        use std::collections::BTreeMap;
        let n = graph.node_count();
        let k = targets.len();
        if n == 0 || k <= 1 {
            return;
        }
        let caps: Vec<f64> = targets.iter().map(|t| t * balance_factor).collect();
        let floors: Vec<f64> = targets.iter().map(|t| t * (2.0 - balance_factor)).collect();
        let mut part_weight = vec![0.0f64; k];
        for (v, &p) in parts.iter().enumerate() {
            part_weight[p as usize] += vertex_weights[v];
        }
        let mut link: BTreeMap<u32, f64> = BTreeMap::new();
        for _ in 0..max_passes {
            let mut improved = false;
            for v in 0..n as NodeId {
                let from = parts[v as usize];
                link.clear();
                let mut is_boundary = false;
                graph.for_each_neighbor(v, |u, w| {
                    let pu = parts[u as usize];
                    if pu != from {
                        is_boundary = true;
                    }
                    *link.entry(pu).or_insert(0.0) += w;
                });
                if !is_boundary {
                    continue;
                }
                let w_v = vertex_weights[v as usize];
                let internal = link.get(&from).copied().unwrap_or(0.0);
                let mut best: Option<(u32, f64)> = None;
                for (&to, &external) in &link {
                    if to == from {
                        continue;
                    }
                    let gain = external - internal;
                    if gain <= 1e-12 {
                        continue;
                    }
                    let dest_ok = part_weight[to as usize] + w_v <= caps[to as usize]
                        || part_weight[to as usize] + w_v < part_weight[from as usize];
                    if !dest_ok {
                        continue;
                    }
                    if part_weight[from as usize] - w_v < floors[from as usize]
                        && part_weight[from as usize] <= targets[from as usize]
                    {
                        continue;
                    }
                    match best {
                        Some((bp, bg)) if gain < bg || (gain == bg && to > bp) => {}
                        _ => best = Some((to, gain)),
                    }
                }
                if let Some((to, _)) = best {
                    parts[v as usize] = to;
                    part_weight[from as usize] -= w_v;
                    part_weight[to as usize] += w_v;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    #[test]
    fn dense_refine_matches_ordered_map_reference_byte_for_byte() {
        // A messy multi-part instance: 4 communities, noisy chords, varied
        // vertex weights, deliberately bad starting partition.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let b = c * 10;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    if (i + j) % 3 != 0 {
                        edges.push((b + i, b + j, 1.0 + (i as f64) * 0.1));
                    }
                }
            }
            edges.push((b, ((c + 1) % 4) * 10 + 3, 0.7));
            edges.push((b + 5, ((c + 2) % 4) * 10 + 1, 0.3));
        }
        let g = AdjacencyGraph::from_edges(40, edges);
        let weights: Vec<f64> = (0..40).map(|v| 1.0 + (v % 5) as f64 * 0.25).collect();
        let total: f64 = weights.iter().sum();
        let targets = vec![total / 4.0; 4];
        let start: Vec<u32> = (0..40).map(|v| (v % 4) as u32).collect();

        let mut dense = start.clone();
        fm_refine_with_targets(&g, &weights, &mut dense, &targets, 1.1, 12);
        let mut reference = start;
        reference_refine(&g, &weights, &mut reference, &targets, 1.1, 12);
        assert_eq!(dense, reference, "dense scratch diverged from reference");
    }

    /// A messy refinement instance shared by the parallel-equality tests:
    /// multi-part, noisy chords, varied vertex weights, bad start.
    fn messy_instance(seed: u32) -> (AdjacencyGraph, Vec<f64>, Vec<f64>, Vec<u32>) {
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let b = c * 12;
            for i in 0..12 {
                for j in (i + 1)..12 {
                    if !(i + j + seed).is_multiple_of(3) {
                        edges.push((b + i, b + j, 1.0 + (i as f64) * 0.1));
                    }
                }
            }
            edges.push((b, ((c + 1) % 4) * 12 + 3, 0.7));
            edges.push((b + 5, ((c + 2) % 4) * 12 + 1, 0.3));
            edges.push((b + 7, ((c + 3) % 4) * 12 + 9, 0.45));
        }
        let g = AdjacencyGraph::from_edges(48, edges);
        let weights: Vec<f64> = (0..48)
            .map(|v| 1.0 + ((v + seed as usize) % 5) as f64 * 0.25)
            .collect();
        let total: f64 = weights.iter().sum();
        let targets = vec![total / 4.0; 4];
        let start: Vec<u32> = (0..48).map(|v| ((v + seed as usize) % 4) as u32).collect();
        (g, weights, targets, start)
    }

    /// The cached parallel boundary pass replays the serial move sequence
    /// byte-for-byte at every thread count — pass-boundary refreshes plus
    /// inline re-gathers must be indistinguishable from the always-fresh
    /// serial gather.
    #[test]
    fn threaded_refine_matches_serial_byte_for_byte() {
        for seed in [0u32, 1, 2] {
            let (g, weights, targets, start) = messy_instance(seed);
            let mut serial = start.clone();
            fm_refine_with_targets(&g, &weights, &mut serial, &targets, 1.1, 12);
            for threads in [2usize, 3, 8, 61] {
                let mut par = start.clone();
                fm_refine_with_targets_threaded(&g, &weights, &mut par, &targets, 1.1, 12, threads);
                assert_eq!(par, serial, "seed={seed} threads={threads}");
            }
        }
    }

    /// The uniform-target wrapper dispatches identically too, including
    /// the degenerate shapes (empty graph, one part).
    #[test]
    fn threaded_refine_wrapper_and_degenerate_shapes() {
        let (g, weights, _, start) = messy_instance(1);
        let mut serial = start.clone();
        fm_refine(&g, &weights, &mut serial, 4, 1.2, 8);
        let mut par = start.clone();
        fm_refine_threaded(&g, &weights, &mut par, 4, 1.2, 8, 3);
        assert_eq!(par, serial);

        let empty = AdjacencyGraph::from_edges(0, Vec::<(NodeId, NodeId, f64)>::new());
        fm_refine_threaded(&empty, &[], &mut [], 2, 1.1, 4, 4);
        let mut one_part = start;
        fm_refine_threaded(&g, &weights, &mut one_part, 1, 1.1, 4, 4);
    }
}
