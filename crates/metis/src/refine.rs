//! Boundary FM refinement and the edge-cut objective.

use txallo_graph::{AdjacencyGraph, DenseAccumulator, NodeId, WeightedGraph};

/// Minimum cut improvement for an FM move to count as a gain. A
/// magnitude floor against float dust from the link accumulator, not a
/// tie-break tolerance; the value is preserved exactly — raising it
/// changes which moves fire and therefore the refined partitions.
// txallo-lint: allow(D2-eps-literal) — named, documented gain floor; value pinned by the metis golden/property tests
const FM_GAIN_MIN: f64 = 1e-12;

/// Total weight of edges whose endpoints lie in different parts.
pub fn edge_cut(graph: &AdjacencyGraph, parts: &[u32]) -> f64 {
    let mut cut = 0.0;
    for v in 0..graph.node_count() as NodeId {
        graph.for_each_neighbor(v, |u, w| {
            if v < u && parts[v as usize] != parts[u as usize] {
                cut += w;
            }
        });
    }
    cut
}

/// Simplified boundary Fiduccia–Mattheyses refinement.
///
/// Each pass sweeps the boundary vertices in ascending id order and greedily
/// moves a vertex to the adjacent part with the largest positive cut
/// reduction, subject to the balance constraint (`target × balance_factor`
/// cap on the destination, and the source must not become "too empty" —
/// below `target × (2 − balance_factor)` — unless it is over target).
/// Passes repeat until no move improves the cut or `max_passes` is reached.
///
/// This forgoes the full FM gain-bucket/rollback machinery; for the graph
/// sizes the blockchain baseline works on, greedy boundary passes converge
/// to comparable cuts and stay deterministic.
pub fn fm_refine(
    graph: &AdjacencyGraph,
    vertex_weights: &[f64],
    parts: &mut [u32],
    k: usize,
    balance_factor: f64,
    max_passes: usize,
) {
    let total: f64 = vertex_weights.iter().sum();
    let targets = vec![total / k.max(1) as f64; k];
    fm_refine_with_targets(
        graph,
        vertex_weights,
        parts,
        &targets,
        balance_factor,
        max_passes,
    );
}

/// [`fm_refine`] generalized to per-part weight targets (used by the
/// recursive-bisection driver, where a 2-way split may be `⌈k/2⌉ : ⌊k/2⌋`).
pub fn fm_refine_with_targets(
    graph: &AdjacencyGraph,
    vertex_weights: &[f64],
    parts: &mut [u32],
    targets: &[f64],
    balance_factor: f64,
    max_passes: usize,
) {
    let n = graph.node_count();
    let k = targets.len();
    if n == 0 || k <= 1 {
        return;
    }
    let caps: Vec<f64> = targets.iter().map(|t| t * balance_factor).collect();
    let floors: Vec<f64> = targets.iter().map(|t| t * (2.0 - balance_factor)).collect();

    let mut part_weight = vec![0.0f64; k];
    for (v, &p) in parts.iter().enumerate() {
        part_weight[p as usize] += vertex_weights[v];
    }

    // Dense per-part link weights, reused across every vertex visit (no
    // hashing or allocation on the refinement hot path).
    let mut link = DenseAccumulator::new();
    for _ in 0..max_passes {
        let mut improved = false;
        for v in 0..n as NodeId {
            let from = parts[v as usize];
            link.begin(k);
            let mut is_boundary = false;
            graph.for_each_neighbor(v, |u, w| {
                let pu = parts[u as usize];
                if pu != from {
                    is_boundary = true;
                }
                link.add(pu, w);
            });
            if !is_boundary {
                continue;
            }
            let w_v = vertex_weights[v as usize];
            let internal = link.get(from);
            // Candidate destinations in ascending part order (determinism).
            link.sort_touched();

            let mut best: Option<(u32, f64)> = None;
            for (to, external) in link.entries() {
                if to == from {
                    continue;
                }
                let gain = external - internal;
                if gain <= FM_GAIN_MIN {
                    continue;
                }
                // A move is admissible if the destination stays within the
                // cap, or if it still strictly improves the balance (moving
                // from a heavier to a lighter part) — the escape hatch that
                // keeps refinement live when parts sit exactly at the cap.
                let dest_ok = part_weight[to as usize] + w_v <= caps[to as usize]
                    || part_weight[to as usize] + w_v < part_weight[from as usize];
                if !dest_ok {
                    continue;
                }
                if part_weight[from as usize] - w_v < floors[from as usize]
                    && part_weight[from as usize] <= targets[from as usize]
                {
                    continue;
                }
                match best {
                    Some((bp, bg)) if gain < bg || (gain == bg && to > bp) => {}
                    _ => best = Some((to, gain)),
                }
            }
            if let Some((to, _)) = best {
                parts[v as usize] = to;
                part_weight[from as usize] -= w_v;
                part_weight[to as usize] += w_v;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques_graph() -> AdjacencyGraph {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                edges.push((a, b, 1.0));
                edges.push((a + 4, b + 4, 1.0));
            }
        }
        edges.push((0, 4, 0.1));
        AdjacencyGraph::from_edges(8, edges)
    }

    #[test]
    fn edge_cut_counts_cross_edges_once() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)]);
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 3.0);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0.0);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 9.0);
    }

    #[test]
    fn refine_fixes_a_bad_bisection() {
        let g = two_cliques_graph();
        // Start with one node on the wrong side.
        let mut parts = vec![0, 0, 0, 1, 1, 1, 1, 0];
        let before = edge_cut(&g, &parts);
        fm_refine(&g, &[1.0; 8], &mut parts, 2, 1.3, 8);
        let after = edge_cut(&g, &parts);
        assert!(
            after < before,
            "refinement must reduce cut: {before} -> {after}"
        );
        assert!(
            (after - 0.1).abs() < 1e-9,
            "optimal cut is the bridge, got {after}"
        );
    }

    #[test]
    fn refine_respects_capacity() {
        // Star: center 0 + 6 leaves; k=2 with tight balance. Refinement must
        // not dump everything into one part.
        let edges: Vec<_> = (1..7u32).map(|v| (0u32, v, 1.0)).collect();
        let g = AdjacencyGraph::from_edges(7, edges);
        let mut parts = vec![0, 0, 0, 0, 1, 1, 1];
        fm_refine(&g, &[1.0; 7], &mut parts, 2, 1.2, 8);
        let heavy = parts.iter().filter(|&&p| p == 0).count();
        assert!(heavy <= 5, "balance cap violated: {parts:?}");
    }

    #[test]
    fn refine_is_deterministic_and_terminates() {
        let g = two_cliques_graph();
        let mut p1 = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let mut p2 = p1.clone();
        fm_refine(&g, &[1.0; 8], &mut p1, 2, 1.3, 50);
        fm_refine(&g, &[1.0; 8], &mut p2, 2, 1.3, 50);
        assert_eq!(p1, p2);
    }

    /// Ordered-map reference of the boundary pass: identical admission
    /// rules and tie-breaks, `BTreeMap` gathering. The dense-scratch
    /// implementation must produce byte-identical parts.
    fn reference_refine(
        graph: &AdjacencyGraph,
        vertex_weights: &[f64],
        parts: &mut [u32],
        targets: &[f64],
        balance_factor: f64,
        max_passes: usize,
    ) {
        use std::collections::BTreeMap;
        let n = graph.node_count();
        let k = targets.len();
        if n == 0 || k <= 1 {
            return;
        }
        let caps: Vec<f64> = targets.iter().map(|t| t * balance_factor).collect();
        let floors: Vec<f64> = targets.iter().map(|t| t * (2.0 - balance_factor)).collect();
        let mut part_weight = vec![0.0f64; k];
        for (v, &p) in parts.iter().enumerate() {
            part_weight[p as usize] += vertex_weights[v];
        }
        let mut link: BTreeMap<u32, f64> = BTreeMap::new();
        for _ in 0..max_passes {
            let mut improved = false;
            for v in 0..n as NodeId {
                let from = parts[v as usize];
                link.clear();
                let mut is_boundary = false;
                graph.for_each_neighbor(v, |u, w| {
                    let pu = parts[u as usize];
                    if pu != from {
                        is_boundary = true;
                    }
                    *link.entry(pu).or_insert(0.0) += w;
                });
                if !is_boundary {
                    continue;
                }
                let w_v = vertex_weights[v as usize];
                let internal = link.get(&from).copied().unwrap_or(0.0);
                let mut best: Option<(u32, f64)> = None;
                for (&to, &external) in &link {
                    if to == from {
                        continue;
                    }
                    let gain = external - internal;
                    if gain <= 1e-12 {
                        continue;
                    }
                    let dest_ok = part_weight[to as usize] + w_v <= caps[to as usize]
                        || part_weight[to as usize] + w_v < part_weight[from as usize];
                    if !dest_ok {
                        continue;
                    }
                    if part_weight[from as usize] - w_v < floors[from as usize]
                        && part_weight[from as usize] <= targets[from as usize]
                    {
                        continue;
                    }
                    match best {
                        Some((bp, bg)) if gain < bg || (gain == bg && to > bp) => {}
                        _ => best = Some((to, gain)),
                    }
                }
                if let Some((to, _)) = best {
                    parts[v as usize] = to;
                    part_weight[from as usize] -= w_v;
                    part_weight[to as usize] += w_v;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    #[test]
    fn dense_refine_matches_ordered_map_reference_byte_for_byte() {
        // A messy multi-part instance: 4 communities, noisy chords, varied
        // vertex weights, deliberately bad starting partition.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            let b = c * 10;
            for i in 0..10 {
                for j in (i + 1)..10 {
                    if (i + j) % 3 != 0 {
                        edges.push((b + i, b + j, 1.0 + (i as f64) * 0.1));
                    }
                }
            }
            edges.push((b, ((c + 1) % 4) * 10 + 3, 0.7));
            edges.push((b + 5, ((c + 2) % 4) * 10 + 1, 0.3));
        }
        let g = AdjacencyGraph::from_edges(40, edges);
        let weights: Vec<f64> = (0..40).map(|v| 1.0 + (v % 5) as f64 * 0.25).collect();
        let total: f64 = weights.iter().sum();
        let targets = vec![total / 4.0; 4];
        let start: Vec<u32> = (0..40).map(|v| (v % 4) as u32).collect();

        let mut dense = start.clone();
        fm_refine_with_targets(&g, &weights, &mut dense, &targets, 1.1, 12);
        let mut reference = start;
        reference_refine(&g, &weights, &mut reference, &targets, 1.1, 12);
        assert_eq!(dense, reference, "dense scratch diverged from reference");
    }
}
