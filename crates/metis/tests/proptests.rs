//! Property-based tests of the multilevel partitioner.

use proptest::prelude::*;
use txallo_graph::{AdjacencyGraph, WeightedGraph};
use txallo_metis::{
    coarsen, edge_cut, fm_refine, greedy_growing_partition, heavy_edge_matching, metis_partition,
    MetisConfig, VertexWeighting,
};

fn edges_strategy(n: u32, len: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..n, 0..n, 0.1f64..4.0), 1..len)
}

proptest! {
    /// The partition is total, in-range, and its cut never exceeds the
    /// total non-loop weight.
    #[test]
    fn partition_validity(edges in edges_strategy(30, 90), k in 1usize..8) {
        let g = AdjacencyGraph::from_edges(30, edges);
        let r = metis_partition(&g, &MetisConfig::new(k));
        prop_assert_eq!(r.parts.len(), 30);
        prop_assert!(r.parts.iter().all(|&p| (p as usize) < k));
        prop_assert!(r.edge_cut >= 0.0);
        prop_assert!(r.edge_cut <= g.total_weight() + 1e-9);
        prop_assert!((edge_cut(&g, &r.parts) - r.edge_cut).abs() < 1e-9);
    }

    /// Heavy-edge matching is a valid matching: the coarse map groups at
    /// most two fine nodes per coarse node.
    #[test]
    fn matching_groups_at_most_two(edges in edges_strategy(25, 60)) {
        let g = AdjacencyGraph::from_edges(25, edges);
        let (map, coarse_n) = heavy_edge_matching(&g);
        prop_assert_eq!(map.len(), 25);
        let mut counts = vec![0usize; coarse_n];
        for &c in &map {
            prop_assert!((c as usize) < coarse_n);
            counts[c as usize] += 1;
        }
        prop_assert!(counts.iter().all(|&c| (1..=2).contains(&c)));
    }

    /// Coarsening conserves both edge weight and vertex weight at every
    /// level, and levels shrink monotonically.
    #[test]
    fn coarsening_conservation(edges in edges_strategy(40, 120)) {
        let g = AdjacencyGraph::from_edges(40, edges);
        let total_edge = g.total_weight();
        let levels = coarsen(g, vec![1.0; 40], 4);
        let mut prev_n = usize::MAX;
        for level in &levels {
            prop_assert!((level.graph.total_weight() - total_edge).abs() < 1e-6);
            let vw: f64 = level.vertex_weights.iter().sum();
            prop_assert!((vw - 40.0).abs() < 1e-6);
            prop_assert!(level.graph.node_count() <= prev_n);
            prev_n = level.graph.node_count();
        }
    }

    /// FM refinement never increases the cut.
    #[test]
    fn refinement_monotone(edges in edges_strategy(20, 60), k in 2usize..5) {
        let g = AdjacencyGraph::from_edges(20, edges);
        let w = vec![1.0; 20];
        let mut parts = greedy_growing_partition(&g, &w, k, 1.2);
        let before = edge_cut(&g, &parts);
        fm_refine(&g, &w, &mut parts, k, 1.2, 6);
        let after = edge_cut(&g, &parts);
        prop_assert!(after <= before + 1e-9, "cut increased: {before} -> {after}");
        prop_assert!(parts.iter().all(|&p| (p as usize) < k));
    }

    /// Unit-weight balance: no part exceeds a generous bound of the
    /// average (greedy growing + escape-hatch refinement can overshoot the
    /// strict cap on adversarial graphs, but must not collapse everything
    /// into one part when the graph is connected enough).
    #[test]
    fn unit_weight_parts_nonempty_enough(k in 2usize..5) {
        // Deterministic connected ring, sized well above k.
        let n = 8 * k as u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n, 1.0)).collect();
        let g = AdjacencyGraph::from_edges(n as usize, edges);
        let mut cfg = MetisConfig::new(k);
        cfg.weighting = VertexWeighting::Unit;
        let r = metis_partition(&g, &cfg);
        let mut counts = vec![0usize; k];
        for &p in &r.parts {
            counts[p as usize] += 1;
        }
        let avg = n as usize / k;
        for &c in &counts {
            prop_assert!(c > 0, "empty part: {counts:?}");
            prop_assert!(c <= avg * 2, "overfull part: {counts:?}");
        }
    }

    /// Determinism on arbitrary inputs.
    #[test]
    fn partitioning_deterministic(edges in edges_strategy(22, 50), k in 2usize..5) {
        let g = AdjacencyGraph::from_edges(22, edges);
        let a = metis_partition(&g, &MetisConfig::new(k));
        let b = metis_partition(&g, &MetisConfig::new(k));
        prop_assert_eq!(a.parts, b.parts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Determinism rule D5 on the whole multilevel pipeline: parallel
    /// heavy-edge matching and parallel FM refinement must reproduce the
    /// serial partition — labels, cut bits and level count — at every
    /// thread count (serial, even, odd, oversubscribed).
    #[test]
    fn partition_is_bit_identical_at_every_thread_count(
        edges in edges_strategy(48, 160),
        k in 2usize..6,
    ) {
        let g = AdjacencyGraph::from_edges(48, edges);
        let serial = metis_partition(&g, &MetisConfig::new(k).with_threads(1));
        for threads in [2usize, 3, 8] {
            let par = metis_partition(&g, &MetisConfig::new(k).with_threads(threads));
            prop_assert_eq!(&par.parts, &serial.parts, "{} threads", threads);
            prop_assert_eq!(
                par.edge_cut.to_bits(),
                serial.edge_cut.to_bits(),
                "{} threads",
                threads
            );
            prop_assert_eq!(par.levels, serial.levels, "{} threads", threads);
        }
    }

    /// The refinement entry point alone, on raw random partitions (not
    /// just the projections the pipeline produces): parts vector and
    /// returned cut must match the serial pass bit for bit.
    #[test]
    fn refinement_is_bit_identical_at_every_thread_count(
        edges in edges_strategy(36, 110),
        raw_parts in prop::collection::vec(0u32..4, 36),
        k in 2usize..5,
    ) {
        let g = AdjacencyGraph::from_edges(36, edges);
        let weights: Vec<f64> = (0..36u32).map(|v| g.strength(v).max(1e-3)).collect();
        let base: Vec<u32> = raw_parts.iter().map(|&p| p % k as u32).collect();
        let mut serial = base.clone();
        fm_refine(&g, &weights, &mut serial, k, 1.08, 6);
        let serial_cut = edge_cut(&g, &serial);
        for threads in [2usize, 3, 8] {
            let mut par = base.clone();
            txallo_metis::fm_refine_threaded(&g, &weights, &mut par, k, 1.08, 6, threads);
            prop_assert_eq!(&par, &serial, "{} threads", threads);
            prop_assert_eq!(
                edge_cut(&g, &par).to_bits(),
                serial_cut.to_bits(),
                "{} threads",
                threads
            );
        }
    }
}
