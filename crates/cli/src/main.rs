//! `txallo` — command-line interface to the TxAllo toolkit.
//!
//! ```text
//! txallo generate  --out trace.csv [--accounts N] [--transactions N] [--seed S]
//! txallo stats     --trace trace.csv
//! txallo allocate  --trace trace.csv --method <name>
//!                  [-k N] [--eta F] [--threads N] [--out mapping.csv]
//! txallo evaluate  --trace trace.csv --mapping mapping.csv [--eta F]
//! txallo simulate  [--method <name>] [--shards N] [--epochs N] [--gap N] [--seed S]
//!                  [--threads N] [--stream true] [--window W] [--accounts N]
//! txallo convert   --etl transactions.csv --out trace.csv
//! ```
//!
//! Method names come from `txallo_core::AllocatorRegistry::builtin()`;
//! the usage text enumerates them at runtime.

mod args;
mod commands;
mod mapping;

use args::ArgMap;

fn main() {
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };
    let args = match ArgMap::parse(raw) {
        Ok(a) => a,
        Err(e) => fail(&e),
    };
    let result = match command.as_str() {
        "generate" => commands::generate::run(&args),
        "stats" => commands::stats::run(&args),
        "allocate" => commands::allocate::run(&args),
        "convert" => commands::convert::run(&args),
        "evaluate" => commands::evaluate::run(&args),
        "simulate" => commands::simulate::run(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return;
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    if let Err(e) = result {
        fail(&e);
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn usage() -> String {
    let methods = txallo_core::AllocatorRegistry::builtin().names().join("|");
    format!(
        "txallo — dynamic transaction allocation for sharded blockchains

USAGE:
  txallo generate  --out trace.csv [--accounts N] [--transactions N] [--seed S]
  txallo stats     --trace trace.csv
  txallo allocate  --trace trace.csv --method {methods} \\
                   [-k N] [--eta F] [--threads N] [--out mapping.csv]
  txallo evaluate  --trace trace.csv --mapping mapping.csv [--eta F]
  txallo simulate  [--method {methods}] [--shards N] [--epochs N] [--gap N] [--seed S]
                   [--threads N] [--stream true] [--window W] [--accounts N]
  txallo convert   --etl transactions.csv --out trace.csv

--threads N selects the sweep worker count (1 = serial, 0 = one per
core; default: the TXALLO_THREADS environment variable, unset = 1).
The count never changes an allocation, only how fast it is computed.

--stream true synthesizes simulate's blocks on demand (out-of-core
replay, any --accounts scale) instead of materializing the ledger;
--window W additionally evicts graph rows idle for more than W epochs.
Both are bit-transparent: they change memory use, never an allocation."
    )
}
