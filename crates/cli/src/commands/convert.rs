//! `txallo convert` — convert an Ethereum-ETL `transactions.csv` export
//! into the toolkit's compact trace format.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use txallo_workload::{read_ethereum_etl_csv, write_ledger_csv};

use crate::args::ArgMap;

/// Runs the command.
pub fn run(args: &ArgMap) -> Result<(), String> {
    let input = args.required("etl")?;
    let output = args.required("out")?;
    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let ledger = read_ethereum_etl_csv(BufReader::new(file)).map_err(|e| e.to_string())?;
    if ledger.transaction_count() == 0 {
        return Err(format!("{input} contains no transactions"));
    }
    let out = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    write_ledger_csv(&ledger, BufWriter::new(out)).map_err(|e| e.to_string())?;
    eprintln!(
        "converted {} transactions in {} blocks ({} accounts) -> {output}",
        ledger.transaction_count(),
        ledger.block_count(),
        ledger.stats().account_count
    );
    Ok(())
}
