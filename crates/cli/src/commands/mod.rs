//! CLI subcommand implementations.

pub mod allocate;
pub mod convert;
pub mod evaluate;
pub mod generate;
pub mod simulate;
pub mod stats;

use std::fs::File;
use std::io::BufReader;

use txallo_core::Dataset;
use txallo_workload::read_ledger_csv;

use crate::args::ArgMap;

/// Loads `--trace <path>` into a dataset.
pub fn load_dataset(args: &ArgMap) -> Result<Dataset, String> {
    let path = args.required("trace")?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let ledger = read_ledger_csv(BufReader::new(file)).map_err(|e| e.to_string())?;
    if ledger.transaction_count() == 0 {
        return Err(format!("{path} contains no transactions"));
    }
    Ok(Dataset::from_ledger(ledger))
}
