//! `txallo evaluate` — score a saved mapping against a trace.

use std::fs::File;
use std::io::BufReader;

use txallo_core::{MetricsReport, TxAlloParams};

use crate::args::ArgMap;
use crate::commands::load_dataset;
use crate::mapping::read_mapping;

/// Runs the command.
pub fn run(args: &ArgMap) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let path = args.required("mapping")?;
    let eta: f64 = args.parsed_or("eta", 2.0)?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let (allocation, unknown) = read_mapping(dataset.graph(), BufReader::new(file))?;
    if unknown > 0 {
        eprintln!("warning: {unknown} mapped accounts do not appear in the trace");
    }
    let params = TxAlloParams::for_graph(dataset.graph(), allocation.shard_count()).with_eta(eta);
    let report = MetricsReport::compute(dataset.graph(), &allocation, &params);
    let tx_gamma = MetricsReport::transaction_level_cross_ratio(&dataset, &allocation);

    println!("shards               : {}", allocation.shard_count());
    println!(
        "cross-shard γ (graph): {:.2}%",
        100.0 * report.cross_shard_ratio
    );
    println!("cross-shard γ (tx)   : {:.2}%", 100.0 * tx_gamma);
    println!(
        "balance ρ/λ          : {:.3}",
        report.workload_std_normalized
    );
    println!(
        "throughput Λ/λ       : {:.2}×",
        report.throughput_normalized
    );
    println!("avg latency ζ        : {:.2} blocks", report.avg_latency);
    println!("worst-case latency   : {:.0} blocks", report.worst_latency);
    Ok(())
}
