//! `txallo generate` — write a synthetic Ethereum-like trace to CSV.

use std::fs::File;
use std::io::BufWriter;

use txallo_workload::{write_ledger_csv, EthereumLikeGenerator, WorkloadConfig};

use crate::args::ArgMap;

/// Runs the command.
pub fn run(args: &ArgMap) -> Result<(), String> {
    let out = args.required("out")?;
    let defaults = WorkloadConfig::default();
    let config = WorkloadConfig {
        accounts: args.parsed_or("accounts", defaults.accounts)?,
        transactions: args.parsed_or("transactions", defaults.transactions)?,
        block_size: args.parsed_or("block-size", defaults.block_size)?,
        groups: args.parsed_or("groups", defaults.groups)?,
        hot_account_share: args.parsed_or("hot-share", defaults.hot_account_share)?,
        intra_group_prob: args.parsed_or("intra-prob", defaults.intra_group_prob)?,
        ..defaults
    };
    let seed: u64 = args.parsed_or("seed", 42)?;
    config.validate();

    let mut generator = EthereumLikeGenerator::new(config, seed);
    let ledger = generator.default_ledger();
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    write_ledger_csv(&ledger, BufWriter::new(file)).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} transactions in {} blocks ({} accounts) to {out}",
        ledger.transaction_count(),
        ledger.block_count(),
        ledger.stats().account_count
    );
    Ok(())
}
