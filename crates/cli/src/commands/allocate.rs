//! `txallo allocate` — compute an account-shard mapping for a trace.

use std::fs::File;
use std::io::BufWriter;
use std::time::Instant;

use txallo_core::{AllocatorRegistry, MetricsReport, TxAlloParams};

use crate::args::ArgMap;
use crate::commands::load_dataset;
use crate::mapping::write_mapping;

/// Runs the command.
pub fn run(args: &ArgMap) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let k: usize = args.parsed_or("k", 16)?;
    let eta: f64 = args.parsed_or("eta", 2.0)?;
    if k == 0 {
        return Err("-k must be at least 1".into());
    }
    let method = args.get("method").unwrap_or("txallo");
    // Sweep worker threads: 1 = serial, 0 = one per core. Never changes
    // the allocation, only wall-clock time.
    let threads: usize = args.parsed_or("threads", txallo_graph::par::threads_from_env())?;
    let params = TxAlloParams::for_graph(dataset.graph(), k)
        .with_eta(eta)
        .with_threads(threads);

    // Name → algorithm resolution goes through the shared registry; an
    // unknown method reports whatever is actually registered.
    let registry = AllocatorRegistry::builtin();
    let mut allocator = registry.batch(method, &params).map_err(|e| e.to_string())?;

    let start = Instant::now();
    let allocation = allocator.allocate(&dataset);
    let elapsed = start.elapsed();
    let report = MetricsReport::compute(dataset.graph(), &allocation, &params);

    eprintln!("method            : {}", allocator.name());
    eprintln!("allocation time   : {elapsed:.2?}");
    eprintln!(
        "cross-shard ratio : {:.2}%",
        100.0 * report.cross_shard_ratio
    );
    eprintln!("balance ρ/λ       : {:.3}", report.workload_std_normalized);
    eprintln!("throughput Λ/λ    : {:.2}×", report.throughput_normalized);
    eprintln!("avg latency ζ     : {:.2} blocks", report.avg_latency);

    if let Some(out) = args.get("out") {
        let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        write_mapping(dataset.graph(), &allocation, BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        eprintln!("mapping written to {out}");
    }
    Ok(())
}
