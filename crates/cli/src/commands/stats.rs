//! `txallo stats` — dataset structure statistics (the Fig. 1 analysis).

use txallo_graph::GraphStats;

use crate::args::ArgMap;
use crate::commands::load_dataset;

/// Runs the command.
pub fn run(args: &ArgMap) -> Result<(), String> {
    let dataset = load_dataset(args)?;
    let ledger_stats = dataset.ledger().stats();
    let graph_stats = GraphStats::compute(dataset.graph());
    println!("blocks                 : {}", ledger_stats.block_count);
    println!(
        "transactions           : {}",
        ledger_stats.transaction_count
    );
    println!("accounts               : {}", ledger_stats.account_count);
    println!("self-loop transactions : {}", ledger_stats.self_loop_count);
    println!("multi-IO transactions  : {}", ledger_stats.multi_io_count);
    println!(
        "hottest account share  : {:.2}%",
        100.0 * ledger_stats.hottest_account_share()
    );
    println!("graph edges            : {}", dataset.graph().edge_count());
    println!("activity gini          : {:.4}", graph_stats.gini);
    println!(
        "low-activity accounts  : {:.1}% (≤ 2 transactions)",
        100.0 * graph_stats.low_activity_fraction
    );
    Ok(())
}
