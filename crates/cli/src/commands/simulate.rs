//! `txallo simulate` — run the epoch simulator on a synthetic stream.

use txallo_core::AllocatorRegistry;
use txallo_graph::{ResidencyConfig, WeightedGraph};
use txallo_sim::{HybridSchedule, ShardedChainSim, SimConfig, UpdateKind};
use txallo_workload::{EthereumLikeGenerator, StreamingWorkload, WorkloadConfig};

use crate::args::ArgMap;

/// Runs the command.
pub fn run(args: &ArgMap) -> Result<(), String> {
    let shards: usize = args.parsed_or("shards", 12)?;
    let epochs: u64 = args.parsed_or("epochs", 20)?;
    let epoch_blocks: usize = args.parsed_or("epoch-blocks", 50)?;
    let gap: u64 = args.parsed_or("gap", 10)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let eta: f64 = args.parsed_or("eta", 2.0)?;
    // Sweep worker threads: 1 = serial, 0 = one per core. Never changes
    // the allocation, only wall-clock time.
    let threads: usize = args.parsed_or("threads", txallo_graph::par::threads_from_env())?;
    // Out-of-core replay: synthesize blocks on demand (`--stream true`)
    // instead of materializing the whole ledger up front, and optionally
    // evict graph rows idle for more than `--window W` epochs.
    let stream_mode: bool = args.parsed_or("stream", false)?;
    let window: u32 = args.parsed_or("window", 0)?;
    let accounts: usize = args.parsed_or("accounts", WorkloadConfig::default().accounts)?;
    let method = args.get("method").unwrap_or("txallo");
    if shards == 0 || epochs == 0 || epoch_blocks == 0 {
        return Err("--shards, --epochs and --epoch-blocks must be positive".into());
    }
    if window > 0 && !stream_mode {
        return Err("--window needs --stream true (out-of-core replay)".into());
    }
    // Validate the method up front (the simulator would panic later);
    // unknown names report the registered set.
    let registry = AllocatorRegistry::builtin();
    if !registry.contains(method) {
        return Err(format!(
            "unknown method {method:?} (registered: {})",
            registry.names().join("|")
        ));
    }

    let config = WorkloadConfig {
        accounts,
        block_size: 100,
        new_account_prob: 0.004,
        ..WorkloadConfig::default()
    };

    let schedule = if gap == 0 {
        HybridSchedule::AlwaysAdaptive
    } else {
        HybridSchedule::Hybrid { global_gap: gap }
    };
    let decay: f64 = args.parsed_or("decay", 1.0)?;
    let decay_per_epoch = if decay < 1.0 { Some(decay) } else { None };
    let residency = (window > 0).then(|| ResidencyConfig::in_memory(window));
    let mut sim = ShardedChainSim::new(SimConfig {
        shards,
        eta,
        epoch_blocks,
        method: method.to_string(),
        schedule,
        decay_per_epoch,
        threads,
        residency,
    });

    let warm_blocks = epoch_blocks as u64 * epochs;
    let reports = if stream_mode {
        let w = StreamingWorkload::new(config, seed);
        let warm_time = sim.warmup_streamed(w.block_iter(0..warm_blocks));
        eprintln!(
            "warm-up: {} accounts, initial {method} solve in {warm_time:.2?}",
            sim.graph().node_count()
        );
        println!("epoch,algo,gamma,throughput_times,new_accounts,migrated,update_seconds");
        sim.run_stream_with(epochs, |e| w.epoch_blocks(e + epochs, epoch_blocks as u64))
    } else {
        let mut generator = EthereumLikeGenerator::new(config, seed);
        let warm = generator.blocks(warm_blocks);
        let stream = generator.blocks(warm_blocks);
        let warm_time = sim.warmup(&warm);
        eprintln!(
            "warm-up: {} accounts, initial {method} solve in {warm_time:.2?}",
            sim.graph().node_count()
        );
        println!("epoch,algo,gamma,throughput_times,new_accounts,migrated,update_seconds");
        sim.run_stream(&stream)
    };
    let mut sum_tp = 0.0;
    for r in &reports {
        sum_tp += r.metrics.throughput_normalized;
        println!(
            "{},{},{:.4},{:.3},{},{},{:.6}",
            r.epoch,
            match r.update {
                UpdateKind::Global => "global",
                UpdateKind::Adaptive => "adaptive",
            },
            r.metrics.cross_shard_ratio,
            r.metrics.throughput_normalized,
            r.new_accounts,
            r.metrics.migrated_accounts,
            r.update_time.as_secs_f64()
        );
    }
    eprintln!(
        "average throughput: {:.3}× unsharded",
        sum_tp / reports.len().max(1) as f64
    );
    if window > 0 {
        let fp = sim.memory_footprint();
        eprintln!(
            "residency: {} resident / {} cold rows, {} evictions, \
             {:.1} MiB resident graph + {:.1} MiB allocator state, \
             {:.1} MiB spilled",
            fp.resident_rows,
            fp.cold_rows,
            fp.evicted_rows,
            fp.resident_bytes() as f64 / (1024.0 * 1024.0),
            sim.allocator_state_bytes() as f64 / (1024.0 * 1024.0),
            fp.spill_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    Ok(())
}
