//! `txallo simulate` — run the epoch simulator on a synthetic stream.

use txallo_core::AllocatorRegistry;
use txallo_graph::WeightedGraph;
use txallo_sim::{HybridSchedule, ShardedChainSim, SimConfig, UpdateKind};
use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

use crate::args::ArgMap;

/// Runs the command.
pub fn run(args: &ArgMap) -> Result<(), String> {
    let shards: usize = args.parsed_or("shards", 12)?;
    let epochs: u64 = args.parsed_or("epochs", 20)?;
    let epoch_blocks: usize = args.parsed_or("epoch-blocks", 50)?;
    let gap: u64 = args.parsed_or("gap", 10)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let eta: f64 = args.parsed_or("eta", 2.0)?;
    // Sweep worker threads: 1 = serial, 0 = one per core. Never changes
    // the allocation, only wall-clock time.
    let threads: usize = args.parsed_or("threads", txallo_graph::par::threads_from_env())?;
    let method = args.get("method").unwrap_or("txallo");
    if shards == 0 || epochs == 0 || epoch_blocks == 0 {
        return Err("--shards, --epochs and --epoch-blocks must be positive".into());
    }
    // Validate the method up front (the simulator would panic later);
    // unknown names report the registered set.
    let registry = AllocatorRegistry::builtin();
    if !registry.contains(method) {
        return Err(format!(
            "unknown method {method:?} (registered: {})",
            registry.names().join("|")
        ));
    }

    let config = WorkloadConfig {
        block_size: 100,
        new_account_prob: 0.004,
        ..WorkloadConfig::default()
    };
    let mut generator = EthereumLikeGenerator::new(config, seed);
    let warm = generator.blocks(epoch_blocks as u64 * epochs);
    let stream = generator.blocks(epoch_blocks as u64 * epochs);

    let schedule = if gap == 0 {
        HybridSchedule::AlwaysAdaptive
    } else {
        HybridSchedule::Hybrid { global_gap: gap }
    };
    let decay: f64 = args.parsed_or("decay", 1.0)?;
    let decay_per_epoch = if decay < 1.0 { Some(decay) } else { None };
    let mut sim = ShardedChainSim::new(SimConfig {
        shards,
        eta,
        epoch_blocks,
        method: method.to_string(),
        schedule,
        decay_per_epoch,
        threads,
    });
    let warm_time = sim.warmup(&warm);
    eprintln!(
        "warm-up: {} accounts, initial {method} solve in {warm_time:.2?}",
        sim.graph().node_count()
    );

    println!("epoch,algo,gamma,throughput_times,new_accounts,migrated,update_seconds");
    let mut sum_tp = 0.0;
    let reports = sim.run_stream(&stream);
    for r in &reports {
        sum_tp += r.metrics.throughput_normalized;
        println!(
            "{},{},{:.4},{:.3},{},{},{:.6}",
            r.epoch,
            match r.update {
                UpdateKind::Global => "global",
                UpdateKind::Adaptive => "adaptive",
            },
            r.metrics.cross_shard_ratio,
            r.metrics.throughput_normalized,
            r.new_accounts,
            r.metrics.migrated_accounts,
            r.update_time.as_secs_f64()
        );
    }
    eprintln!(
        "average throughput: {:.3}× unsharded",
        sum_tp / reports.len().max(1) as f64
    );
    Ok(())
}
