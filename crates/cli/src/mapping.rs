//! Account→shard mapping file I/O (`account_id,shard` per line).

use std::io::{BufRead, Write};

use txallo_core::Allocation;
use txallo_graph::{fit_u32, TxGraph, WeightedGraph};

/// Writes an allocation as `account_id,shard` rows.
pub fn write_mapping(
    graph: &TxGraph,
    allocation: &Allocation,
    mut out: impl Write,
) -> std::io::Result<()> {
    for v in 0..fit_u32(graph.node_count()) {
        writeln!(out, "{},{}", graph.account(v).0, allocation.shard_of(v).0)?;
    }
    Ok(())
}

/// Reads a mapping file back into an [`Allocation`] aligned with `graph`'s
/// node ids. Accounts present in the graph but absent from the file are an
/// error (the mapping must be complete); unknown accounts in the file are
/// ignored with a warning count returned.
pub fn read_mapping(graph: &TxGraph, input: impl BufRead) -> Result<(Allocation, usize), String> {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut max_shard = 0u32;
    let mut unknown = 0usize;
    for (idx, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("I/O error at line {}: {e}", idx + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (acct, shard) = trimmed
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected account,shard", idx + 1))?;
        let acct: u64 = acct
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad account: {e}", idx + 1))?;
        let shard: u32 = shard
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad shard: {e}", idx + 1))?;
        match graph.node_of(txallo_model::AccountId(acct)) {
            Some(node) => {
                labels[node as usize] = shard;
                max_shard = max_shard.max(shard);
            }
            None => unknown += 1,
        }
    }
    if let Some(v) = labels.iter().position(|&l| l == u32::MAX) {
        return Err(format!(
            "mapping is incomplete: account {} has no shard",
            graph.account(v as u32)
        ));
    }
    Ok((Allocation::new(labels, max_shard as usize + 1), unknown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use txallo_model::{AccountId, Transaction};

    fn graph() -> TxGraph {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(AccountId(10), AccountId(20)));
        g.ingest_transaction(&Transaction::transfer(AccountId(20), AccountId(30)));
        g
    }

    #[test]
    fn roundtrip() {
        let g = graph();
        let alloc = Allocation::new(vec![0, 1, 1], 2);
        let mut buf = Vec::new();
        write_mapping(&g, &alloc, &mut buf).unwrap();
        let (back, unknown) = read_mapping(&g, BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.labels(), alloc.labels());
        assert_eq!(unknown, 0);
    }

    #[test]
    fn unknown_accounts_are_counted() {
        let g = graph();
        let text = "10,0\n20,1\n30,0\n999,1\n";
        let (alloc, unknown) = read_mapping(&g, BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(unknown, 1);
        assert_eq!(alloc.len(), 3);
    }

    #[test]
    fn incomplete_mapping_is_an_error() {
        let g = graph();
        let text = "10,0\n20,1\n";
        assert!(read_mapping(&g, BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn malformed_lines_are_errors() {
        let g = graph();
        assert!(read_mapping(&g, BufReader::new("10;0\n".as_bytes())).is_err());
        assert!(read_mapping(&g, BufReader::new("x,0\n".as_bytes())).is_err());
        assert!(read_mapping(&g, BufReader::new("10,y\n".as_bytes())).is_err());
    }
}
