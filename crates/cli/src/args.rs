//! Minimal `--flag value` argument parsing (no external dependencies, per
//! DESIGN.md's dependency policy).

use std::collections::BTreeMap;

/// Parsed `--flag value` pairs. Flags are normalized without the leading
/// dashes; single-letter flags (`-k`) are accepted too.
#[derive(Debug, Default, Clone)]
pub struct ArgMap {
    values: BTreeMap<String, String>,
}

impl ArgMap {
    /// Parses an argument stream. Every flag must take a value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let Some(name) = arg.strip_prefix('-') else {
                return Err(format!("expected a --flag, found {arg:?}"));
            };
            let name = name.trim_start_matches('-');
            if name.is_empty() {
                return Err("empty flag".into());
            }
            let Some(value) = args.next() else {
                return Err(format!("flag --{name} needs a value"));
            };
            values.insert(name.to_string(), value);
        }
        Ok(Self { values })
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// A parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ArgMap, String> {
        ArgMap::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_values() {
        let a = parse(&["--trace", "t.csv", "-k", "16", "--eta", "4"]).unwrap();
        assert_eq!(a.get("trace"), Some("t.csv"));
        assert_eq!(a.parsed_or::<usize>("k", 0).unwrap(), 16);
        assert_eq!(a.parsed_or::<f64>("eta", 0.0).unwrap(), 4.0);
        assert_eq!(a.parsed_or::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_value_and_positional() {
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["positional"]).is_err());
    }

    #[test]
    fn required_and_bad_parse() {
        let a = parse(&["--k", "abc"]).unwrap();
        assert!(a.required("nope").is_err());
        assert!(a.parsed_or::<usize>("k", 0).is_err());
    }
}
