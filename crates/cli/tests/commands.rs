//! End-to-end tests of the CLI command functions (exercised in-process via
//! the binary's modules — the binary itself is a thin dispatcher).

use std::process::Command;

fn txallo_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_txallo"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("txallo_cli_tests");
    std::fs::create_dir_all(&dir).expect("mk tmp dir");
    dir.join(name)
}

#[test]
fn generate_stats_allocate_evaluate_pipeline() {
    let trace = tmp("pipeline_trace.csv");
    let mapping = tmp("pipeline_mapping.csv");

    // generate
    let out = txallo_bin()
        .args([
            "generate",
            "--out",
            trace.to_str().unwrap(),
            "--accounts",
            "500",
            "--transactions",
            "5000",
            "--seed",
            "7",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    // stats
    let out = txallo_bin()
        .args(["stats", "--trace", trace.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("transactions"), "stats output: {stdout}");
    assert!(stdout.contains("hottest account share"));

    // allocate (txallo) + write mapping
    let out = txallo_bin()
        .args([
            "allocate",
            "--trace",
            trace.to_str().unwrap(),
            "--method",
            "txallo",
            "-k",
            "4",
            "--out",
            mapping.to_str().unwrap(),
        ])
        .output()
        .expect("run allocate");
    assert!(
        out.status.success(),
        "allocate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(mapping.exists());

    // evaluate the saved mapping
    let out = txallo_bin()
        .args([
            "evaluate",
            "--trace",
            trace.to_str().unwrap(),
            "--mapping",
            mapping.to_str().unwrap(),
        ])
        .output()
        .expect("run evaluate");
    assert!(
        out.status.success(),
        "evaluate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cross-shard"), "evaluate output: {stdout}");
    assert!(stdout.contains("throughput"));
}

#[test]
fn allocate_all_methods_work() {
    let trace = tmp("methods_trace.csv");
    let out = txallo_bin()
        .args([
            "generate",
            "--out",
            trace.to_str().unwrap(),
            "--accounts",
            "300",
            "--transactions",
            "3000",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    for method in ["txallo", "hash", "metis", "scheduler"] {
        let out = txallo_bin()
            .args([
                "allocate",
                "--trace",
                trace.to_str().unwrap(),
                "--method",
                method,
                "-k",
                "3",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "method {method} failed");
    }
}

#[test]
fn simulate_produces_epoch_rows() {
    let out = txallo_bin()
        .args([
            "simulate",
            "--shards",
            "3",
            "--epochs",
            "3",
            "--epoch-blocks",
            "10",
            "--gap",
            "2",
        ])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let data_rows = stdout
        .lines()
        .filter(|l| l.starts_with(char::is_numeric))
        .count();
    assert_eq!(data_rows, 3, "one row per epoch: {stdout}");
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let out = txallo_bin()
        .args(["frobnicate", "--x", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Missing required flag.
    let out = txallo_bin().args(["stats"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
    // Unknown method.
    let trace = tmp("err_trace.csv");
    txallo_bin()
        .args([
            "generate",
            "--out",
            trace.to_str().unwrap(),
            "--accounts",
            "200",
            "--transactions",
            "2000",
        ])
        .output()
        .unwrap();
    let out = txallo_bin()
        .args([
            "allocate",
            "--trace",
            trace.to_str().unwrap(),
            "--method",
            "nope",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));
}

#[test]
fn help_prints_usage() {
    let out = txallo_bin().args(["help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn convert_etl_export_roundtrip() {
    let etl = tmp("convert_etl.csv");
    let out = tmp("convert_out.csv");
    std::fs::write(
        &etl,
        "hash,block_number,from_address,to_address\n\
         0xaa,100,0xAb,0xCd\n\
         0xbb,100,0xCd,0xAb\n\
         0xcc,101,0xAb,\n",
    )
    .unwrap();
    let result = txallo_bin()
        .args([
            "convert",
            "--etl",
            etl.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("run convert");
    assert!(
        result.status.success(),
        "convert failed: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    // The converted trace is loadable by stats.
    let result = txallo_bin()
        .args(["stats", "--trace", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(result.status.success());
    let stdout = String::from_utf8_lossy(&result.stdout);
    assert!(
        stdout.contains("transactions           : 3"),
        "stats: {stdout}"
    );
}
