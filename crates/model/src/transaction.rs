//! Multi-input/multi-output transactions (§III-A).

use crate::account::AccountId;
use crate::error::ModelError;

/// A transaction `Tx := (A_in, A_out)` over account sets.
///
/// Only the associated accounts matter for allocation (the paper drops
/// values, gas and scripts), so that is all we store. Inputs and outputs may
/// overlap — a self-transfer ("self-loop" in §V-B) is a transaction whose
/// deduplicated account set has a single element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    inputs: Vec<AccountId>,
    outputs: Vec<AccountId>,
}

impl Transaction {
    /// Creates a transaction, validating the paper's well-formedness rule
    /// `A_in, A_out ≠ ∅`.
    pub fn new(inputs: Vec<AccountId>, outputs: Vec<AccountId>) -> Result<Self, ModelError> {
        if inputs.is_empty() || outputs.is_empty() {
            return Err(ModelError::EmptyEndpointSet);
        }
        Ok(Self { inputs, outputs })
    }

    /// Convenience constructor for the common 1-input/1-output transfer.
    pub fn transfer(from: AccountId, to: AccountId) -> Self {
        Self {
            inputs: vec![from],
            outputs: vec![to],
        }
    }

    /// Input account list (`A_in`, possibly with duplicates as submitted).
    pub fn inputs(&self) -> &[AccountId] {
        &self.inputs
    }

    /// Output account list (`A_out`).
    pub fn outputs(&self) -> &[AccountId] {
        &self.outputs
    }

    /// The deduplicated, sorted account set `A_Tx = A_in ∪ A_out`.
    pub fn account_set(&self) -> Vec<AccountId> {
        let mut all: Vec<AccountId> = self
            .inputs
            .iter()
            .chain(self.outputs.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// `|A_Tx|` without allocating when the transaction is a plain transfer.
    pub fn account_count(&self) -> usize {
        if self.inputs.len() == 1 && self.outputs.len() == 1 {
            return if self.inputs[0] == self.outputs[0] {
                1
            } else {
                2
            };
        }
        self.account_set().len()
    }

    /// Whether the transaction touches a single account (a self-loop edge in
    /// the transaction graph).
    pub fn is_self_loop(&self) -> bool {
        self.account_count() == 1
    }

    /// `π(Tx) = C(|A_Tx|, 2)`: the number of one-to-one edges the clique
    /// expansion produces (Def. 2). Self-loop transactions map to a single
    /// self-loop edge, so `π = 1` for them.
    pub fn pair_count(&self) -> usize {
        let n = self.account_count();
        if n <= 1 {
            1
        } else {
            n * (n - 1) / 2
        }
    }

    /// The weight each expanded edge receives, `1/π(Tx)`; total edge weight
    /// contributed by any transaction is exactly 1.
    pub fn edge_weight(&self) -> f64 {
        1.0 / self.pair_count() as f64
    }

    /// Iterates the unordered account pairs of the clique expansion together
    /// with their weight. A self-loop transaction yields `(a, a, 1.0)`.
    pub fn expanded_edges(&self) -> impl Iterator<Item = (AccountId, AccountId, f64)> + '_ {
        let set = self.account_set();
        let w = if set.len() <= 1 {
            1.0
        } else {
            1.0 / (set.len() * (set.len() - 1) / 2) as f64
        };
        ExpandedEdges { set, i: 0, j: 0, w }
    }
}

struct ExpandedEdges {
    set: Vec<AccountId>,
    i: usize,
    j: usize,
    w: f64,
}

impl Iterator for ExpandedEdges {
    type Item = (AccountId, AccountId, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.set.len();
        if n == 1 {
            // Single-account transaction: one self-loop edge.
            if self.i == 0 {
                self.i = 1;
                return Some((self.set[0], self.set[0], self.w));
            }
            return None;
        }
        self.j += 1;
        if self.j >= n {
            self.i += 1;
            self.j = self.i + 1;
            if self.j >= n {
                return None;
            }
        }
        Some((self.set[self.i], self.set[self.j], self.w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> AccountId {
        AccountId(v)
    }

    #[test]
    fn rejects_empty_endpoints() {
        assert!(Transaction::new(vec![], vec![a(1)]).is_err());
        assert!(Transaction::new(vec![a(1)], vec![]).is_err());
    }

    #[test]
    fn transfer_has_two_accounts_and_one_pair() {
        let tx = Transaction::transfer(a(1), a(2));
        assert_eq!(tx.account_count(), 2);
        assert_eq!(tx.pair_count(), 1);
        assert!((tx.edge_weight() - 1.0).abs() < 1e-12);
        assert!(!tx.is_self_loop());
    }

    #[test]
    fn self_transfer_is_self_loop() {
        let tx = Transaction::transfer(a(7), a(7));
        assert!(tx.is_self_loop());
        assert_eq!(tx.account_count(), 1);
        assert_eq!(tx.pair_count(), 1);
        let edges: Vec<_> = tx.expanded_edges().collect();
        assert_eq!(edges, vec![(a(7), a(7), 1.0)]);
    }

    #[test]
    fn multi_io_clique_expansion() {
        // 2 inputs + 2 distinct outputs => |A_Tx| = 4, π = 6, weight 1/6 each.
        let tx = Transaction::new(vec![a(1), a(2)], vec![a(3), a(4)]).unwrap();
        assert_eq!(tx.account_count(), 4);
        assert_eq!(tx.pair_count(), 6);
        let edges: Vec<_> = tx.expanded_edges().collect();
        assert_eq!(edges.len(), 6);
        let total: f64 = edges.iter().map(|e| e.2).sum();
        assert!(
            (total - 1.0).abs() < 1e-12,
            "weights must sum to 1, got {total}"
        );
        // All pairs distinct and ordered (i < j).
        for (u, v, _) in &edges {
            assert!(u < v);
        }
    }

    #[test]
    fn duplicate_endpoints_are_deduplicated() {
        let tx = Transaction::new(vec![a(1), a(1)], vec![a(2), a(1)]).unwrap();
        assert_eq!(tx.account_set(), vec![a(1), a(2)]);
        assert_eq!(tx.pair_count(), 1);
    }

    #[test]
    fn three_account_transaction() {
        let tx = Transaction::new(vec![a(1)], vec![a(2), a(3)]).unwrap();
        assert_eq!(tx.pair_count(), 3);
        let edges: Vec<_> = tx.expanded_edges().collect();
        assert_eq!(edges.len(), 3);
        for (_, _, w) in edges {
            assert!((w - 1.0 / 3.0).abs() < 1e-12);
        }
    }
}
