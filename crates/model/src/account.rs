//! Account and shard identifiers.

use crate::hash::mix64;
use std::fmt;

/// An account address in an account-based blockchain.
///
/// Real Ethereum addresses are 160-bit; for the reproduction a 64-bit opaque
/// identifier is sufficient (the paper only uses addresses as hash inputs
/// and equality keys). The inner value is the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(pub u64);

impl AccountId {
    /// Deterministic 64-bit hash of the address, the stand-in for
    /// `SHA256(address)` used by the hash-based baseline (§II-C) and for
    /// canonical node ordering (§V-B).
    #[inline]
    pub fn address_hash(self) -> u64 {
        mix64(self.0)
    }

    /// Hash-based shard assignment: `hash(address) mod k` (Chainspace-style).
    #[inline]
    pub fn hash_shard(self, shard_count: usize) -> ShardId {
        debug_assert!(shard_count > 0, "shard_count must be positive");
        ShardId((self.address_hash() % shard_count as u64) as u32)
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl From<u64> for AccountId {
    fn from(v: u64) -> Self {
        AccountId(v)
    }
}

/// Kind of an account (§II-A): externally owned vs. smart-contract.
///
/// Contract accounts are typically far more active, which is what produces
/// the long-tailed activity distribution of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccountKind {
    /// Externally Owned Account — an ordinary client key pair.
    #[default]
    ExternallyOwned,
    /// Contract Account — owned by a smart contract.
    Contract,
}

/// Identifier of a shard, `0..k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

impl From<u32> for ShardId {
    fn from(v: u32) -> Self {
        ShardId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_shard_is_stable_and_in_range() {
        for k in [1usize, 2, 7, 60] {
            for a in 0..500u64 {
                let s = AccountId(a).hash_shard(k);
                assert!(s.index() < k);
                assert_eq!(s, AccountId(a).hash_shard(k), "must be deterministic");
            }
        }
    }

    #[test]
    fn hash_shard_is_roughly_uniform() {
        let k = 8usize;
        let mut counts = vec![0usize; k];
        for a in 0..8000u64 {
            counts[AccountId(a).hash_shard(k).index()] += 1;
        }
        let expected = 8000 / k;
        for c in counts {
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 2) as u64,
                "bucket count {c} too far from expected {expected}"
            );
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(AccountId(255).to_string(), "0x00000000000000ff");
        assert_eq!(ShardId(3).to_string(), "shard#3");
    }
}
