//! Fast, deterministic hashing utilities.
//!
//! The workspace deliberately avoids the `rustc-hash` dependency and ships a
//! small Fx-style multiply-rotate hasher instead (see DESIGN.md). The hasher
//! is *not* HashDoS-resistant; it is used for account/node keys that are
//! either internal indices or already well-mixed addresses, exactly the
//! situation the Rust Performance Book recommends a fast hasher for.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx-style hasher: `state = (state.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher64 {
    state: u64,
}

/// Multiplicative seed used by the Firefox/rustc Fx hash family.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // txallo-lint: allow(lib-unwrap) — chunks_exact(8) yields exactly 8 bytes per chunk, so the array conversion is infallible
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` keyed with the fast Fx-style hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher64>>;
/// `HashSet` keyed with the fast Fx-style hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher64>>;

/// Finalizing 64-bit mixer (splitmix64 finalizer).
///
/// Used wherever the paper relies on "the hash value of the address":
/// the hash-based baseline allocation (`mix64(addr) % k`) and the canonical
/// deterministic node ordering.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(bytes: &[u8]) -> u64 {
        let bh = BuildHasherDefault::<FxHasher64>::default();
        let mut h = bh.build_hasher();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(b"txallo"), hash_of(b"txallo"));
        assert_eq!(mix64(42), mix64(42));
    }

    #[test]
    fn different_inputs_hash_differently() {
        assert_ne!(hash_of(b"a"), hash_of(b"b"));
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn partial_words_are_padded_not_dropped() {
        // 9 bytes = one full word + 1 remainder byte; the remainder must
        // contribute to the state.
        assert_ne!(
            hash_of(&[1, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of(&[1, 2, 3, 4, 5, 6, 7, 8])
        );
    }

    #[test]
    fn mix64_spreads_low_bits() {
        // Sequential inputs must land in different buckets for small moduli.
        let buckets: std::collections::HashSet<u64> = (0..64).map(|i| mix64(i) % 16).collect();
        assert!(buckets.len() > 8, "mix64 should spread sequential keys");
    }

    #[test]
    fn fx_map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&999], 1998);
    }
}
