//! Blockchain domain model for the TxAllo reproduction.
//!
//! This crate defines the account-based blockchain abstractions from §III-A
//! of the paper: accounts, multi-input/multi-output transactions, blocks and
//! the ledger, plus the shard identifiers used by every allocator.
//!
//! Design notes:
//! * Accounts are 64-bit opaque addresses ([`AccountId`]); the deterministic
//!   ordering required by the paper (§V-B, "the hash value of the accounts
//!   can determine the order of node sequence") is provided by
//!   [`hash::mix64`].
//! * Transactions keep their raw input/output lists; the deduplicated
//!   account set `A_Tx` and the clique-expansion pair count `π(Tx)` used by
//!   the transaction graph are computed here so every consumer agrees on
//!   them.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod account;
pub mod block;
pub mod error;
pub mod hash;
pub mod ledger;
pub mod transaction;

pub use account::{AccountId, AccountKind, ShardId};
pub use block::{Block, BlockHeight};
pub use error::ModelError;
pub use hash::{FxHashMap, FxHashSet};
pub use ledger::{Ledger, LedgerStats};
pub use transaction::Transaction;
