//! Blocks: ordered batches of transactions.

use crate::transaction::Transaction;

/// Height of a block within the ledger (0-based in this reproduction).
pub type BlockHeight = u64;

/// A block `B_i := {Tx_1, ..., Tx_|B_i|}` (§III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    height: BlockHeight,
    transactions: Vec<Transaction>,
}

impl Block {
    /// Creates a block at `height` containing `transactions` in order.
    pub fn new(height: BlockHeight, transactions: Vec<Transaction>) -> Self {
        Self {
            height,
            transactions,
        }
    }

    /// The block's height.
    pub fn height(&self) -> BlockHeight {
        self.height
    }

    /// The block's transactions, in commit order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions in the block (`|B_i|`).
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the block carries no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountId;

    #[test]
    fn block_accessors() {
        let txs = vec![
            Transaction::transfer(AccountId(1), AccountId(2)),
            Transaction::transfer(AccountId(2), AccountId(3)),
        ];
        let b = Block::new(7, txs.clone());
        assert_eq!(b.height(), 7);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.transactions(), &txs[..]);
    }

    #[test]
    fn empty_block() {
        let b = Block::new(0, vec![]);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
