//! Error types for the domain model.

use std::fmt;

/// Errors raised when constructing domain objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A transaction was created with an empty input or output set,
    /// violating `A_in, A_out ≠ ∅` (§III-A).
    EmptyEndpointSet,
    /// Blocks appended to a ledger must have contiguous heights.
    NonContiguousBlocks {
        /// The height the ledger expected next.
        expected: u64,
        /// The height that was provided.
        found: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyEndpointSet => {
                write!(
                    f,
                    "transaction input and output account sets must be non-empty"
                )
            }
            ModelError::NonContiguousBlocks { expected, found } => {
                write!(
                    f,
                    "non-contiguous block height: expected {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ModelError::EmptyEndpointSet
            .to_string()
            .contains("non-empty"));
        let e = ModelError::NonContiguousBlocks {
            expected: 2,
            found: 5,
        };
        assert!(e.to_string().contains("expected 2"));
        assert!(e.to_string().contains("found 5"));
    }
}
