//! The ledger `L = {B_1, ..., B_n}` and summary statistics.

use crate::account::AccountId;
use crate::block::{Block, BlockHeight};
use crate::error::ModelError;
use crate::hash::FxHashMap;
use crate::transaction::Transaction;

/// An append-only, totally ordered sequence of blocks (§III-A).
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    blocks: Vec<Block>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a ledger from blocks, validating that heights are contiguous
    /// and ascending from the first block's height.
    pub fn from_blocks(blocks: Vec<Block>) -> Result<Self, ModelError> {
        for pair in blocks.windows(2) {
            if pair[1].height() != pair[0].height() + 1 {
                return Err(ModelError::NonContiguousBlocks {
                    expected: pair[0].height() + 1,
                    found: pair[1].height(),
                });
            }
        }
        Ok(Self { blocks })
    }

    /// Appends a block; its height must extend the chain by exactly one
    /// (or set the base height when the ledger is empty).
    pub fn push_block(&mut self, block: Block) -> Result<(), ModelError> {
        if let Some(last) = self.blocks.last() {
            if block.height() != last.height() + 1 {
                return Err(ModelError::NonContiguousBlocks {
                    expected: last.height() + 1,
                    found: block.height(),
                });
            }
        }
        self.blocks.push(block);
        Ok(())
    }

    /// All blocks in order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks (`n`).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Height of the first block, if any.
    pub fn base_height(&self) -> Option<BlockHeight> {
        self.blocks.first().map(Block::height)
    }

    /// Height of the last block, if any.
    pub fn tip_height(&self) -> Option<BlockHeight> {
        self.blocks.last().map(Block::height)
    }

    /// Iterates every transaction in ledger order.
    pub fn transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.blocks.iter().flat_map(|b| b.transactions().iter())
    }

    /// Total number of transactions (`|T|`).
    pub fn transaction_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Computes summary statistics over the whole ledger.
    pub fn stats(&self) -> LedgerStats {
        let mut activity: FxHashMap<AccountId, u64> = FxHashMap::default();
        let mut tx_count = 0usize;
        let mut self_loops = 0usize;
        let mut multi_io = 0usize;
        for tx in self.transactions() {
            tx_count += 1;
            if tx.is_self_loop() {
                self_loops += 1;
            }
            if tx.account_count() > 2 {
                multi_io += 1;
            }
            for acct in tx.account_set() {
                *activity.entry(acct).or_insert(0) += 1;
            }
        }
        let account_count = activity.len();
        let max_activity = activity.values().copied().max().unwrap_or(0);
        LedgerStats {
            block_count: self.block_count(),
            transaction_count: tx_count,
            account_count,
            self_loop_count: self_loops,
            multi_io_count: multi_io,
            max_account_activity: max_activity,
        }
    }

    /// Per-account participation counts (number of transactions whose
    /// account set contains the account). Used for Fig. 1-style analysis.
    pub fn account_activity(&self) -> FxHashMap<AccountId, u64> {
        let mut activity: FxHashMap<AccountId, u64> = FxHashMap::default();
        for tx in self.transactions() {
            for acct in tx.account_set() {
                *activity.entry(acct).or_insert(0) += 1;
            }
        }
        activity
    }
}

/// Ledger-level summary numbers (used by the Fig. 1 experiment and README).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerStats {
    /// Number of blocks.
    pub block_count: usize,
    /// Number of transactions.
    pub transaction_count: usize,
    /// Number of distinct accounts.
    pub account_count: usize,
    /// Transactions touching exactly one account.
    pub self_loop_count: usize,
    /// Transactions touching more than two accounts.
    pub multi_io_count: usize,
    /// Largest per-account participation count.
    pub max_account_activity: u64,
}

impl LedgerStats {
    /// Fraction of all transactions involving the most active account.
    pub fn hottest_account_share(&self) -> f64 {
        if self.transaction_count == 0 {
            0.0
        } else {
            self.max_account_activity as f64 / self.transaction_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(from: u64, to: u64) -> Transaction {
        Transaction::transfer(AccountId(from), AccountId(to))
    }

    #[test]
    fn push_enforces_contiguity() {
        let mut l = Ledger::new();
        l.push_block(Block::new(5, vec![])).unwrap();
        l.push_block(Block::new(6, vec![tx(1, 2)])).unwrap();
        let err = l.push_block(Block::new(8, vec![])).unwrap_err();
        assert!(matches!(
            err,
            ModelError::NonContiguousBlocks {
                expected: 7,
                found: 8
            }
        ));
        assert_eq!(l.block_count(), 2);
        assert_eq!(l.base_height(), Some(5));
        assert_eq!(l.tip_height(), Some(6));
    }

    #[test]
    fn from_blocks_validates() {
        assert!(Ledger::from_blocks(vec![Block::new(0, vec![]), Block::new(2, vec![])]).is_err());
        assert!(Ledger::from_blocks(vec![Block::new(3, vec![]), Block::new(4, vec![])]).is_ok());
    }

    #[test]
    fn stats_counts() {
        let blocks = vec![
            Block::new(0, vec![tx(1, 2), tx(1, 1)]),
            Block::new(
                1,
                vec![
                    Transaction::new(vec![AccountId(1)], vec![AccountId(2), AccountId(3)]).unwrap(),
                    tx(1, 3),
                ],
            ),
        ];
        let l = Ledger::from_blocks(blocks).unwrap();
        let s = l.stats();
        assert_eq!(s.block_count, 2);
        assert_eq!(s.transaction_count, 4);
        assert_eq!(s.account_count, 3);
        assert_eq!(s.self_loop_count, 1);
        assert_eq!(s.multi_io_count, 1);
        // account 1 appears in all four transactions.
        assert_eq!(s.max_account_activity, 4);
        assert!((s.hottest_account_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transaction_iteration_order() {
        let l = Ledger::from_blocks(vec![
            Block::new(0, vec![tx(1, 2)]),
            Block::new(1, vec![tx(3, 4), tx(5, 6)]),
        ])
        .unwrap();
        let firsts: Vec<u64> = l.transactions().map(|t| t.inputs()[0].0).collect();
        assert_eq!(firsts, vec![1, 3, 5]);
        assert_eq!(l.transaction_count(), 3);
    }
}
