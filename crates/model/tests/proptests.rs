//! Property-based tests of the domain model invariants.

use proptest::prelude::*;
use txallo_model::{AccountId, Block, Ledger, Transaction};

/// Strategy: non-empty account-id vectors.
fn accounts(max: u64, len: usize) -> impl Strategy<Value = Vec<AccountId>> {
    prop::collection::vec((0..max).prop_map(AccountId), 1..len)
}

proptest! {
    /// The clique expansion always distributes exactly weight 1 and its
    /// edge count matches π(Tx) = C(|A_Tx|, 2).
    #[test]
    fn clique_expansion_distributes_unit_weight(
        ins in accounts(50, 5),
        outs in accounts(50, 5),
    ) {
        let tx = Transaction::new(ins, outs).expect("non-empty by strategy");
        let edges: Vec<_> = tx.expanded_edges().collect();
        prop_assert_eq!(edges.len(), tx.pair_count());
        let total: f64 = edges.iter().map(|e| e.2).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total weight {total}");
        // Each pair is unordered-unique and within the account set.
        let set = tx.account_set();
        for &(a, b, w) in &edges {
            prop_assert!(set.contains(&a) && set.contains(&b));
            prop_assert!(w > 0.0);
            if set.len() > 1 {
                prop_assert!(a < b, "expanded pairs are ordered");
            }
        }
    }

    /// `account_count` equals the deduplicated set size, and `pair_count`
    /// follows the binomial formula.
    #[test]
    fn pair_count_formula(ins in accounts(20, 4), outs in accounts(20, 4)) {
        let tx = Transaction::new(ins, outs).unwrap();
        let n = tx.account_count();
        prop_assert_eq!(n, tx.account_set().len());
        let expected = if n <= 1 { 1 } else { n * (n - 1) / 2 };
        prop_assert_eq!(tx.pair_count(), expected);
        prop_assert!((tx.edge_weight() * tx.pair_count() as f64 - 1.0).abs() < 1e-12);
    }

    /// Hash-based shard assignment is total, stable and in range for any k.
    #[test]
    fn hash_shard_total_and_in_range(addr in any::<u64>(), k in 1usize..100) {
        let shard = AccountId(addr).hash_shard(k);
        prop_assert!(shard.index() < k);
        prop_assert_eq!(shard, AccountId(addr).hash_shard(k));
    }

    /// Ledger construction accepts exactly the contiguous-height block
    /// sequences.
    #[test]
    fn ledger_contiguity(base in 0u64..1000, lens in prop::collection::vec(0usize..5, 1..8)) {
        let blocks: Vec<Block> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let txs = (0..l)
                    .map(|j| Transaction::transfer(AccountId(j as u64), AccountId(j as u64 + 1)))
                    .collect();
                Block::new(base + i as u64, txs)
            })
            .collect();
        let ledger = Ledger::from_blocks(blocks.clone()).expect("contiguous by construction");
        prop_assert_eq!(ledger.block_count(), lens.len());
        prop_assert_eq!(ledger.transaction_count(), lens.iter().sum::<usize>());
        // A gap anywhere breaks it.
        if blocks.len() >= 2 {
            let mut gapped = blocks;
            let last = gapped.len() - 1;
            let h = gapped[last].height();
            gapped[last] = Block::new(h + 1, vec![]);
            prop_assert!(Ledger::from_blocks(gapped).is_err());
        }
    }

    /// Ledger stats are internally consistent.
    #[test]
    fn stats_consistency(pairs in prop::collection::vec((0u64..30, 0u64..30), 1..60)) {
        let txs: Vec<Transaction> = pairs
            .iter()
            .map(|&(a, b)| Transaction::transfer(AccountId(a), AccountId(b)))
            .collect();
        let ledger = Ledger::from_blocks(vec![Block::new(0, txs)]).unwrap();
        let stats = ledger.stats();
        prop_assert_eq!(stats.transaction_count, pairs.len());
        prop_assert!(stats.self_loop_count <= stats.transaction_count);
        prop_assert!(stats.max_account_activity as usize <= stats.transaction_count);
        prop_assert!(stats.hottest_account_share() <= 1.0 + 1e-12);
        let activity = ledger.account_activity();
        prop_assert_eq!(activity.len(), stats.account_count);
        prop_assert_eq!(
            activity.values().copied().max().unwrap_or(0),
            stats.max_account_activity
        );
    }
}
