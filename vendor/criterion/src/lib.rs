//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of criterion's API its benches use: `bench_function`,
//! `benchmark_group` / `bench_with_input`, `BenchmarkId`, `black_box` and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs one untimed warm-up iteration,
//! then `sample_size` timed iterations; the report prints min / median /
//! max per-iteration wall time. There is no statistical analysis, HTML
//! report or regression detection — numbers are for eyeballing trends and
//! feeding the JSON snapshot the experiment harness writes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (subset of `std::hint::black_box` semantics).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Records one sample set for a single benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `sample_size` iterations of `routine` (plus one warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Measured samples (one duration per timed iteration).
    pub fn samples(&self) -> &[Duration] {
        &self.samples
    }
}

fn humanize(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} time:   [no samples]");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let med = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<40} time:   [{} {} {}]",
        humanize(min),
        humanize(med),
        humanize(max)
    );
}

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function` benchmarked at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    /// `--test` smoke mode (mirrors upstream criterion): run every
    /// selected benchmark exactly once to prove the bench code still
    /// compiles *and executes*, without the timing loop. CI uses this so
    /// bench code cannot rot between snapshot PRs.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Applies command-line arguments. Recognizes a bare benchmark name
    /// filter and the `--test` smoke flag; ignores the other harness
    /// flags (`--bench`, `--exact`, …).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.test_mode = true;
            } else if !arg.starts_with('-') {
                self.filter = Some(arg);
            }
        }
        self
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn effective_sample_size(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if self.selected(name) {
            let mut b = Bencher::with_sample_size(self.effective_sample_size());
            f(&mut b);
            if self.test_mode {
                println!("Testing {name}: ok");
            } else {
                report(name, &mut b.samples);
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Upstream prints the final summary here; the stub has nothing to add.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, label);
        if self.criterion.selected(&full) {
            let size = if self.criterion.test_mode {
                1
            } else {
                self.sample_size.unwrap_or(self.criterion.sample_size)
            };
            let mut b = Bencher::with_sample_size(size);
            f(&mut b);
            if self.criterion.test_mode {
                println!("Testing {full}: ok");
            } else {
                report(&full, &mut b.samples);
            }
        }
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run(name, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.label(), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::with_sample_size(5);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert_eq!(b.samples().len(), 5);
        assert_eq!(n, 6, "warm-up plus five timed iterations");
    }

    #[test]
    fn group_and_function_apis_run() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("unit/one", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion {
            sample_size: 50,
            filter: None,
            test_mode: true,
        };
        let mut runs = 0u64;
        c.bench_function("smoke/once", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(runs, 2, "warm-up plus exactly one timed iteration");
    }

    #[test]
    fn humanize_scales() {
        assert!(humanize(Duration::from_nanos(12)).contains("ns"));
        assert!(humanize(Duration::from_micros(12)).contains("µs"));
        assert!(humanize(Duration::from_millis(12)).contains("ms"));
        assert!(humanize(Duration::from_secs(2)).contains(" s"));
    }
}
