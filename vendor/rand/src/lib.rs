//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand 0.8`'s API that `txallo-workload` actually
//! uses: [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::SmallRng`]. The backend is xoshiro256++ seeded through
//! splitmix64 — deterministic across platforms and fast, which is all the
//! synthetic trace generator needs. This is **not** a cryptographic RNG
//! and makes no claim of statistical equivalence with upstream `rand`
//! (seeded streams differ from upstream, which is fine: every consumer in
//! this workspace treats the seed as an opaque determinism handle).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rn: SampleRange<T>>(&mut self, range: Rn) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// splitmix64 — used to expand the 64-bit seed into the xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 never
            // produces four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn bool_hits_both_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.gen::<bool>()).count();
        assert!((300..700).contains(&trues), "badly skewed: {trues}");
    }
}
