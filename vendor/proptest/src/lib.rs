//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest's API its test suites use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, range / tuple / vec /
//! `any` strategies, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   (every strategy value used here is `Debug`); minimization is manual.
//! * **Fully deterministic.** Case `i` of test `t` derives its RNG from
//!   `hash(t) ⊕ i` — failures reproduce exactly, across machines, with no
//!   persistence file.
//! * Default case count is 64 (upstream: 256) to keep `cargo test` fast;
//!   override per-suite with `#![proptest_config(ProptestConfig::with_cases(n))]`.

pub mod strategy {
    //! Strategies: deterministic value generators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream there is no value tree and no shrinking: a strategy
    /// maps an RNG state straight to a value.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy producing a single constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
    );
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full value space of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T` (subset of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`](fn@vec): an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    (rng.next_u64() % span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy (subset of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Deterministic case execution.

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (subset of upstream's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases required for the test to pass.
        pub cases: u32,
        /// Give up after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Deterministic per-case RNG (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn deterministic(name: &str, case: u64) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next word of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests (subset of upstream's `proptest!`).
///
/// Supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     /// docs and attributes pass through
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while accepted < config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                case += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let described = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}; ")),+),
                    $(&$arg),+
                );
                // The closure is what gives `prop_assert*`'s `return Err`
                // a frame to return from — not redundant.
                #[allow(clippy::redundant_closure_call)]
                let outcome: $crate::test_runner::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest {}: too many prop_assume! rejections ({rejected})",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case #{}: {}\n  inputs: {}",
                            stringify!($name),
                            case - 1,
                            msg,
                            described,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (re-drawn, not counted) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in prop::collection::vec(0u32..10, 2..6),
            w in prop::collection::vec(any::<bool>(), 4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_streams() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_override_applies(_x in 0u32..2) {
            // Runs with 8 cases; nothing to assert beyond completion.
        }
    }
}
