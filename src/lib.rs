//! # TxAllo
//!
//! A Rust reproduction of **"TxAllo: Dynamic Transaction Allocation in
//! Sharded Blockchain Systems"** (Zhang, Pan, Yu — ICDE 2023,
//! [arXiv:2212.11584](https://arxiv.org/abs/2212.11584)).
//!
//! TxAllo reduces the number of expensive cross-shard transactions in a
//! sharded account-based blockchain by treating account-to-shard assignment
//! as community detection on a weighted transaction graph, directly
//! optimizing a capacity-capped throughput objective.
//!
//! This facade crate re-exports the workspace's sub-crates:
//!
//! * [`model`] — blockchain domain model (accounts, transactions, blocks).
//! * [`graph`] — the weighted transaction graph (Definition 2).
//! * [`louvain`] — Louvain community detection (G-TxAllo initialization).
//! * [`metis`] — a METIS-style multilevel partitioner (baseline).
//! * [`core`] — metrics, the allocation framework, G-TxAllo, A-TxAllo and
//!   the baseline allocators.
//! * [`workload`] — synthetic Ethereum-like trace generation and CSV I/O.
//! * [`sim`] — the epoch-driven sharded-blockchain simulator.
//! * [`chain`] — the consensus substrate: per-shard PBFT, cross-shard
//!   Atomix and validator reshuffling (measures η empirically).
//!
//! ## Quickstart
//!
//! ```
//! use txallo::prelude::*;
//!
//! // Generate a small Ethereum-like trace and build its transaction graph.
//! let config = WorkloadConfig {
//!     accounts: 2_000,
//!     transactions: 10_000,
//!     block_size: 100,
//!     groups: 40,
//!     ..WorkloadConfig::default()
//! };
//! let ledger = EthereumLikeGenerator::new(config, 42).ledger(100);
//! let dataset = Dataset::from_ledger(ledger);
//!
//! // Allocate accounts to 8 shards with G-TxAllo (resolved by name
//! // through the registry) and inspect the metrics.
//! let params = TxAlloParams::for_graph(dataset.graph(), 8);
//! let registry = AllocatorRegistry::builtin();
//! let allocation = registry.batch("txallo", &params).unwrap().allocate(&dataset);
//! let report = MetricsReport::compute(dataset.graph(), &allocation, &params);
//!
//! // The graph has community structure, so TxAllo beats hashing easily.
//! assert!(report.cross_shard_ratio < 0.6);
//! assert!(report.throughput_normalized > 1.0);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub use txallo_chain as chain;
pub use txallo_core as core;
pub use txallo_graph as graph;
pub use txallo_louvain as louvain;
pub use txallo_metis as metis;
pub use txallo_model as model;
pub use txallo_sim as sim;
pub use txallo_workload as workload;

/// Convenience re-exports of the most common types.
pub mod prelude {
    pub use txallo_chain::{
        ChainEngine, ChainEngineConfig, ChainService, ChainServiceConfig, EngineReport,
    };
    pub use txallo_core::{
        Allocation, AllocationUpdate, Allocator, AllocatorRegistry, Dataset, EpochKind,
        MetricsReport, StateCarry, StreamingAllocator, TxAlloParams, UpdateKind,
    };
    pub use txallo_graph::{AdjacencyGraph, GraphStats, NodeId, TxGraph, WeightedGraph};
    pub use txallo_model::{AccountId, Block, Ledger, ShardId, Transaction};
    pub use txallo_sim::{EpochReport, HybridSchedule, ShardedChainSim, SimConfig};
    pub use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};
}
